#include "faults/watchdog.h"

#include <sstream>
#include <utility>

#include "util/log.h"

namespace dcs::faults {
namespace {

constexpr double kSocEps = 1e-9;

}  // namespace

void Watchdog::check(Duration now, const power::PowerTopology& topology,
                     const thermal::RoomModel& room,
                     const thermal::TesTank* tes) {
  ++report_.checks;
  const std::size_t violations_before = report_.violations;

  const auto breaker_bad = [](const power::CircuitBreaker& cb) {
    return cb.tripped() || cb.thermal_state() >= 1.0;
  };
  const auto soc_bad = [&](double soc) {
    return soc < options_.ups_floor - kSocEps || soc > 1.0 + kSocEps;
  };

  // Uniform fast path: every PDU provably shares the representative's
  // state, so a clean representative (and DC breaker) clears all per-PDU
  // invariants without materializing the pool. Any failure falls through to
  // the full walk below, preserving per-PDU violation counts and messages.
  bool per_pdu_clean = false;
  if (topology.uniform()) {
    const power::Pdu& rep = topology.pdu(0);
    per_pdu_clean =
        (!options_.check_breakers ||
         (!breaker_bad(topology.dc_breaker()) && !breaker_bad(rep.breaker()))) &&
        !soc_bad(rep.ups().soc());
  }

  if (!per_pdu_clean) {
    if (options_.check_breakers) {
      const auto check_breaker = [&](const power::CircuitBreaker& cb) {
        if (breaker_bad(cb)) {
          std::ostringstream msg;
          msg << "breaker '" << cb.name() << "' "
              << (cb.tripped() ? "tripped" : "accumulator reached 1");
          fail(now, msg.str());
        }
      };
      check_breaker(topology.dc_breaker());
      for (const auto& pdu : topology.pdus()) check_breaker(pdu.breaker());
    }

    for (const auto& pdu : topology.pdus()) {
      const double soc = pdu.ups().soc();
      if (soc_bad(soc)) {
        std::ostringstream msg;
        msg << "UPS bank '" << pdu.ups().name() << "' SoC " << soc
            << " outside [" << options_.ups_floor << ", 1]";
        fail(now, msg.str());
      }
    }
  }

  if (tes != nullptr) {
    const double soc = tes->state_of_charge();
    if (soc < -kSocEps || soc > 1.0 + kSocEps) {
      std::ostringstream msg;
      msg << "TES tank SoC " << soc << " outside [0, 1]";
      fail(now, msg.str());
    }
  }

  if (options_.check_room && room.over_threshold()) {
    std::ostringstream msg;
    msg << "room rise " << room.rise().c() << " C above the critical threshold";
    fail(now, msg.str());
  }

  const bool violating = report_.violations > violations_before;
  if (decisions_ != nullptr && violating && !prev_violating_) {
    decisions_->emit(
        obs::DecisionRule::kWatchdogViolation,
        {{"violations", static_cast<double>(report_.violations)}}, {},
        {obs::arg("message", last_message_)});
  }
  prev_violating_ = violating;
}

void Watchdog::fail(Duration now, std::string message) {
  ++report_.violations;
  last_message_ = message;
  if (tracer_ != nullptr) {
    tracer_->instant(
        now, "watchdog", "violation",
        {obs::arg("message", message),
         obs::arg("total", static_cast<double>(report_.violations))});
  }
  if (report_.first_message.empty()) {
    // Only the first violation logs; a persistent breach fails every tick
    // and would otherwise flood stderr.
    DCS_LOG_WARN << "watchdog: " << message << " at t=" << now.sec() << "s";
    report_.first_message = std::move(message);
    report_.first_time = now;
  }
}

}  // namespace dcs::faults
