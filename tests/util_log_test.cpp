#include "util/log.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace dcs {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::kDebug);
    set_log_sink([this](LogLevel level, const std::string& msg) {
      captured_.emplace_back(level, msg);
    });
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kWarn);
  }
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LogTest, MacroFormatsAndRoutes) {
  DCS_LOG_INFO << "value=" << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "value=42");
}

TEST_F(LogTest, LevelFilters) {
  set_log_level(LogLevel::kError);
  DCS_LOG_DEBUG << "dropped";
  DCS_LOG_WARN << "dropped too";
  DCS_LOG_ERROR << "kept";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "kept");
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  DCS_LOG_ERROR << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
}

TEST_F(LogTest, DirectLogMessage) {
  log_message(LogLevel::kWarn, "direct");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "direct");
}

}  // namespace
}  // namespace dcs
