#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "power/pdu.h"
#include "power/topology.h"

namespace dcs::power {
namespace {

Pdu::Params pdu_params() {
  Pdu::Params p;
  p.server_count = 200;
  // Paper: 55 W x 200 x 1.25 = 13.75 kW rated.
  p.breaker.rated = Power::kilowatts(13.75);
  return p;
}

TEST(Pdu, AggregatesBatteryBank) {
  const Pdu pdu("p", pdu_params());
  // 200 x 5.5 Wh = 1.1 kWh bank.
  EXPECT_NEAR(pdu.ups().capacity().kwh(), 1.1, 1e-9);
  EXPECT_NEAR(pdu.ups().max_discharge().kw(), 30.0, 1e-9);  // 200 x 150 W
}

TEST(Pdu, StepWithoutUpsLoadsBreakerFully) {
  Pdu pdu("p", pdu_params());
  const Power grid = pdu.step(Power::kilowatts(11), Power::zero(), Duration::seconds(1));
  EXPECT_DOUBLE_EQ(grid.kw(), 11.0);
  EXPECT_DOUBLE_EQ(pdu.last_ups_power().w(), 0.0);
  EXPECT_FALSE(pdu.breaker().tripped());
}

TEST(Pdu, UpsReducesGridLoad) {
  Pdu pdu("p", pdu_params());
  const Power grid = pdu.step(Power::kilowatts(20), Power::kilowatts(8),
                              Duration::seconds(1));
  EXPECT_NEAR(grid.kw(), 12.0, 1e-9);
  EXPECT_NEAR(pdu.last_ups_power().kw(), 8.0, 1e-9);
}

TEST(Pdu, UpsRequestCappedAtServerPower) {
  Pdu pdu("p", pdu_params());
  const Power grid = pdu.step(Power::kilowatts(5), Power::kilowatts(30),
                              Duration::seconds(1));
  EXPECT_DOUBLE_EQ(grid.w(), 0.0);
  EXPECT_NEAR(pdu.last_ups_power().kw(), 5.0, 1e-9);
}

TEST(Pdu, RechargeAddsGridLoad) {
  Pdu pdu("p", pdu_params());
  // Drain a bit first so the bank accepts charge.
  pdu.step(Power::kilowatts(20), Power::kilowatts(10), Duration::seconds(60));
  const Power grid = pdu.recharge_step(Power::kilowatts(10), Power::kilowatts(0.5),
                                       Duration::seconds(1));
  EXPECT_GT(grid.kw(), 10.0);
  EXPECT_DOUBLE_EQ(pdu.last_ups_power().w(), 0.0);
}

TEST(Pdu, RequiresServers) {
  Pdu::Params p = pdu_params();
  p.server_count = 0;
  EXPECT_THROW((void)Pdu("p", p), std::invalid_argument);
}

PowerTopology::Params topo_params(std::size_t pdus = 4) {
  PowerTopology::Params p;
  p.pdu_count = pdus;
  p.pdu = pdu_params();
  p.dc_breaker.rated = Power::kilowatts(13.75 * static_cast<double>(pdus) * 1.2);
  return p;
}

TEST(PowerTopology, CountsServers) {
  const PowerTopology topo(topo_params(4));
  EXPECT_EQ(topo.pdu_count(), 4u);
  EXPECT_EQ(topo.server_count(), 800u);
}

TEST(PowerTopology, UniformStepAggregatesFlows) {
  PowerTopology topo(topo_params(4));
  const Flows flows = topo.step_uniform(Power::kilowatts(10), Power::zero(),
                                        Power::kilowatts(5), Duration::seconds(1));
  EXPECT_NEAR(flows.pdu_grid_total.kw(), 40.0, 1e-9);
  EXPECT_NEAR(flows.dc_load.kw(), 45.0, 1e-9);
  EXPECT_DOUBLE_EQ(flows.ups_total.w(), 0.0);
  EXPECT_FALSE(flows.dc_tripped);
  EXPECT_FALSE(flows.any_pdu_tripped);
}

TEST(PowerTopology, PerPduStepValidatesSizes) {
  PowerTopology topo(topo_params(2));
  EXPECT_THROW((void)topo.step({Power::kilowatts(1)}, {Power::zero(), Power::zero()},
                         Power::zero(), Duration::seconds(1)),
               std::invalid_argument);
}

TEST(PowerTopology, SkewedLoadTripsOnlyThatPdu) {
  PowerTopology topo(topo_params(2));
  // PDU 0 at 60 % overload trips after ~60 s; PDU 1 stays at rated.
  for (int i = 0; i < 70; ++i) {
    topo.step({Power::kilowatts(22), Power::kilowatts(10)},
              {Power::zero(), Power::zero()}, Power::zero(), Duration::seconds(1));
  }
  EXPECT_TRUE(topo.pdus()[0].breaker().tripped());
  EXPECT_FALSE(topo.pdus()[1].breaker().tripped());
}

TEST(PowerTopology, UpsDischargeRelievesDcBreaker) {
  PowerTopology topo(topo_params(2));
  const Flows without = topo.step_uniform(Power::kilowatts(20), Power::zero(),
                                          Power::zero(), Duration::seconds(1));
  PowerTopology topo2(topo_params(2));
  const Flows with = topo2.step_uniform(Power::kilowatts(20), Power::kilowatts(8),
                                        Power::zero(), Duration::seconds(1));
  EXPECT_GT(without.dc_load, with.dc_load);
  EXPECT_NEAR((without.dc_load - with.dc_load).kw(), 16.0, 1e-9);
}

TEST(PowerTopology, UpsEnergyAccounting) {
  PowerTopology topo(topo_params(2));
  const Energy cap = topo.ups_capacity();
  EXPECT_NEAR(cap.kwh(), 2.2, 1e-9);
  topo.step_uniform(Power::kilowatts(20), Power::kilowatts(10), Power::zero(),
                    Duration::seconds(60));
  EXPECT_NEAR((cap - topo.ups_available()).kwh(), 2.0 * 10.0 * 60.0 / 3600.0, 1e-6);
}

TEST(PowerTopology, RechargeUniformDrawsThroughBreakers) {
  PowerTopology topo(topo_params(2));
  topo.step_uniform(Power::kilowatts(20), Power::kilowatts(10), Power::zero(),
                    Duration::seconds(60));
  const Flows flows = topo.recharge_uniform(Power::kilowatts(5), Power::kilowatts(0.5),
                                            Power::kilowatts(2), Duration::seconds(1));
  EXPECT_GT(flows.pdu_grid_total.kw(), 10.0);
  EXPECT_GT(flows.dc_load.kw(), 12.0);
}

TEST(PowerTopology, ResetBreakersRestoresAll) {
  PowerTopology topo(topo_params(2));
  for (int i = 0; i < 70; ++i) {
    topo.step_uniform(Power::kilowatts(22), Power::zero(), Power::zero(),
                      Duration::seconds(1));
  }
  EXPECT_TRUE(topo.pdus()[0].breaker().tripped());
  topo.reset_breakers();
  EXPECT_FALSE(topo.pdus()[0].breaker().tripped());
  EXPECT_FALSE(topo.dc_breaker().tripped());
}

std::uint64_t bits(double v) {
  std::uint64_t out = 0;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

TEST(PowerTopology, UniformRepresentativeMatchesMaterializedWalk) {
  // The uniform fast path updates only the representative PDU; reading any
  // other slot must materialize state that is bit-identical to stepping a
  // de-uniformed topology through the same loads.
  PowerTopology fast(topo_params(4));
  PowerTopology slow(topo_params(4));
  (void)slow.pdus();  // non-const access permanently leaves uniform mode
  EXPECT_TRUE(fast.uniform());
  EXPECT_FALSE(slow.uniform());
  const Power loads[] = {Power::kilowatts(10), Power::kilowatts(18),
                         Power::kilowatts(21), Power::kilowatts(9)};
  for (int round = 0; round < 25; ++round) {
    const Power server = loads[round % 4];
    const Power ups = round % 3 == 0 ? Power::kilowatts(4) : Power::zero();
    const Flows a = fast.step_uniform(server, ups, Power::kilowatts(3),
                                      Duration::seconds(1));
    const Flows b = slow.step_uniform(server, ups, Power::kilowatts(3),
                                      Duration::seconds(1));
    EXPECT_EQ(bits(a.pdu_grid_total.w()), bits(b.pdu_grid_total.w()));
    EXPECT_EQ(bits(a.ups_total.w()), bits(b.ups_total.w()));
    EXPECT_EQ(bits(a.dc_load.w()), bits(b.dc_load.w()));
    EXPECT_EQ(a.any_pdu_tripped, b.any_pdu_tripped);
    EXPECT_EQ(a.dc_tripped, b.dc_tripped);
  }
  EXPECT_TRUE(fast.uniform());
  // Const per-PDU reads materialize without leaving uniform mode, and every
  // slot matches the de-uniformed topology bit for bit.
  for (std::size_t i = 0; i < fast.pdu_count(); ++i) {
    EXPECT_EQ(bits(fast.pdu(i).breaker().thermal_state()),
              bits(slow.pdu(i).breaker().thermal_state()));
    EXPECT_EQ(bits(fast.pdu(i).ups().soc()), bits(slow.pdu(i).ups().soc()));
    EXPECT_EQ(bits(fast.pdu(i).last_grid_load().w()),
              bits(slow.pdu(i).last_grid_load().w()));
  }
  EXPECT_TRUE(fast.uniform());
  EXPECT_EQ(bits(fast.ups_available().j()), bits(slow.ups_available().j()));
  EXPECT_EQ(bits(fast.max_pdu_breaker_heat()),
            bits(slow.max_pdu_breaker_heat()));
}

TEST(PowerTopology, SetFaultAllAppliesToEverySlot) {
  PowerTopology topo(topo_params(3));
  topo.step_uniform(Power::kilowatts(20), Power::kilowatts(5), Power::zero(),
                    Duration::seconds(30));
  topo.set_fault_all(0.8, 0.1, 0.5, 0.9);
  EXPECT_TRUE(topo.uniform());
  for (std::size_t i = 0; i < topo.pdu_count(); ++i) {
    EXPECT_DOUBLE_EQ(topo.pdu(i).breaker().effective_rated().kw(),
                     13.75 * 0.8);
  }
  // Clearing restores the nameplate rating everywhere.
  topo.set_fault_all(1.0, 0.0, 1.0, 1.0);
  for (std::size_t i = 0; i < topo.pdu_count(); ++i) {
    EXPECT_DOUBLE_EQ(topo.pdu(i).breaker().effective_rated().kw(), 13.75);
  }
}

TEST(PowerTopology, CopyPreservesStateAndIndependence) {
  PowerTopology topo(topo_params(2));
  topo.step_uniform(Power::kilowatts(20), Power::kilowatts(8), Power::zero(),
                    Duration::seconds(60));
  PowerTopology copy = topo;  // copy while still uniform/unmaterialized
  EXPECT_EQ(bits(copy.ups_available().j()), bits(topo.ups_available().j()));
  EXPECT_EQ(bits(copy.pdu(1).breaker().thermal_state()),
            bits(topo.pdu(1).breaker().thermal_state()));
  // Further steps on the copy must not alias the original's state.
  copy.step_uniform(Power::kilowatts(22), Power::zero(), Power::zero(),
                    Duration::seconds(60));
  EXPECT_NE(bits(copy.pdu(0).breaker().thermal_state()),
            bits(topo.pdu(0).breaker().thermal_state()));
  // Move keeps the views bound to live state.
  PowerTopology moved = std::move(copy);
  EXPECT_GT(moved.pdu(0).breaker().thermal_state(), 0.0);
  moved.step_uniform(Power::kilowatts(10), Power::zero(), Power::zero(),
                     Duration::seconds(1));
}

TEST(PowerTopology, RequiresAtLeastOnePdu) {
  PowerTopology::Params p = topo_params();
  p.pdu_count = 0;
  EXPECT_THROW((void)PowerTopology{p}, std::invalid_argument);
}

}  // namespace
}  // namespace dcs::power
