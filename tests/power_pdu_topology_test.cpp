#include <gtest/gtest.h>

#include <stdexcept>

#include "power/pdu.h"
#include "power/topology.h"

namespace dcs::power {
namespace {

Pdu::Params pdu_params() {
  Pdu::Params p;
  p.server_count = 200;
  // Paper: 55 W x 200 x 1.25 = 13.75 kW rated.
  p.breaker.rated = Power::kilowatts(13.75);
  return p;
}

TEST(Pdu, AggregatesBatteryBank) {
  const Pdu pdu("p", pdu_params());
  // 200 x 5.5 Wh = 1.1 kWh bank.
  EXPECT_NEAR(pdu.ups().capacity().kwh(), 1.1, 1e-9);
  EXPECT_NEAR(pdu.ups().max_discharge().kw(), 30.0, 1e-9);  // 200 x 150 W
}

TEST(Pdu, StepWithoutUpsLoadsBreakerFully) {
  Pdu pdu("p", pdu_params());
  const Power grid = pdu.step(Power::kilowatts(11), Power::zero(), Duration::seconds(1));
  EXPECT_DOUBLE_EQ(grid.kw(), 11.0);
  EXPECT_DOUBLE_EQ(pdu.last_ups_power().w(), 0.0);
  EXPECT_FALSE(pdu.breaker().tripped());
}

TEST(Pdu, UpsReducesGridLoad) {
  Pdu pdu("p", pdu_params());
  const Power grid = pdu.step(Power::kilowatts(20), Power::kilowatts(8),
                              Duration::seconds(1));
  EXPECT_NEAR(grid.kw(), 12.0, 1e-9);
  EXPECT_NEAR(pdu.last_ups_power().kw(), 8.0, 1e-9);
}

TEST(Pdu, UpsRequestCappedAtServerPower) {
  Pdu pdu("p", pdu_params());
  const Power grid = pdu.step(Power::kilowatts(5), Power::kilowatts(30),
                              Duration::seconds(1));
  EXPECT_DOUBLE_EQ(grid.w(), 0.0);
  EXPECT_NEAR(pdu.last_ups_power().kw(), 5.0, 1e-9);
}

TEST(Pdu, RechargeAddsGridLoad) {
  Pdu pdu("p", pdu_params());
  // Drain a bit first so the bank accepts charge.
  pdu.step(Power::kilowatts(20), Power::kilowatts(10), Duration::seconds(60));
  const Power grid = pdu.recharge_step(Power::kilowatts(10), Power::kilowatts(0.5),
                                       Duration::seconds(1));
  EXPECT_GT(grid.kw(), 10.0);
  EXPECT_DOUBLE_EQ(pdu.last_ups_power().w(), 0.0);
}

TEST(Pdu, RequiresServers) {
  Pdu::Params p = pdu_params();
  p.server_count = 0;
  EXPECT_THROW((void)Pdu("p", p), std::invalid_argument);
}

PowerTopology::Params topo_params(std::size_t pdus = 4) {
  PowerTopology::Params p;
  p.pdu_count = pdus;
  p.pdu = pdu_params();
  p.dc_breaker.rated = Power::kilowatts(13.75 * static_cast<double>(pdus) * 1.2);
  return p;
}

TEST(PowerTopology, CountsServers) {
  const PowerTopology topo(topo_params(4));
  EXPECT_EQ(topo.pdu_count(), 4u);
  EXPECT_EQ(topo.server_count(), 800u);
}

TEST(PowerTopology, UniformStepAggregatesFlows) {
  PowerTopology topo(topo_params(4));
  const Flows flows = topo.step_uniform(Power::kilowatts(10), Power::zero(),
                                        Power::kilowatts(5), Duration::seconds(1));
  EXPECT_NEAR(flows.pdu_grid_total.kw(), 40.0, 1e-9);
  EXPECT_NEAR(flows.dc_load.kw(), 45.0, 1e-9);
  EXPECT_DOUBLE_EQ(flows.ups_total.w(), 0.0);
  EXPECT_FALSE(flows.dc_tripped);
  EXPECT_FALSE(flows.any_pdu_tripped);
}

TEST(PowerTopology, PerPduStepValidatesSizes) {
  PowerTopology topo(topo_params(2));
  EXPECT_THROW((void)topo.step({Power::kilowatts(1)}, {Power::zero(), Power::zero()},
                         Power::zero(), Duration::seconds(1)),
               std::invalid_argument);
}

TEST(PowerTopology, SkewedLoadTripsOnlyThatPdu) {
  PowerTopology topo(topo_params(2));
  // PDU 0 at 60 % overload trips after ~60 s; PDU 1 stays at rated.
  for (int i = 0; i < 70; ++i) {
    topo.step({Power::kilowatts(22), Power::kilowatts(10)},
              {Power::zero(), Power::zero()}, Power::zero(), Duration::seconds(1));
  }
  EXPECT_TRUE(topo.pdus()[0].breaker().tripped());
  EXPECT_FALSE(topo.pdus()[1].breaker().tripped());
}

TEST(PowerTopology, UpsDischargeRelievesDcBreaker) {
  PowerTopology topo(topo_params(2));
  const Flows without = topo.step_uniform(Power::kilowatts(20), Power::zero(),
                                          Power::zero(), Duration::seconds(1));
  PowerTopology topo2(topo_params(2));
  const Flows with = topo2.step_uniform(Power::kilowatts(20), Power::kilowatts(8),
                                        Power::zero(), Duration::seconds(1));
  EXPECT_GT(without.dc_load, with.dc_load);
  EXPECT_NEAR((without.dc_load - with.dc_load).kw(), 16.0, 1e-9);
}

TEST(PowerTopology, UpsEnergyAccounting) {
  PowerTopology topo(topo_params(2));
  const Energy cap = topo.ups_capacity();
  EXPECT_NEAR(cap.kwh(), 2.2, 1e-9);
  topo.step_uniform(Power::kilowatts(20), Power::kilowatts(10), Power::zero(),
                    Duration::seconds(60));
  EXPECT_NEAR((cap - topo.ups_available()).kwh(), 2.0 * 10.0 * 60.0 / 3600.0, 1e-6);
}

TEST(PowerTopology, RechargeUniformDrawsThroughBreakers) {
  PowerTopology topo(topo_params(2));
  topo.step_uniform(Power::kilowatts(20), Power::kilowatts(10), Power::zero(),
                    Duration::seconds(60));
  const Flows flows = topo.recharge_uniform(Power::kilowatts(5), Power::kilowatts(0.5),
                                            Power::kilowatts(2), Duration::seconds(1));
  EXPECT_GT(flows.pdu_grid_total.kw(), 10.0);
  EXPECT_GT(flows.dc_load.kw(), 12.0);
}

TEST(PowerTopology, ResetBreakersRestoresAll) {
  PowerTopology topo(topo_params(2));
  for (int i = 0; i < 70; ++i) {
    topo.step_uniform(Power::kilowatts(22), Power::zero(), Power::zero(),
                      Duration::seconds(1));
  }
  EXPECT_TRUE(topo.pdus()[0].breaker().tripped());
  topo.reset_breakers();
  EXPECT_FALSE(topo.pdus()[0].breaker().tripped());
  EXPECT_FALSE(topo.dc_breaker().tripped());
}

TEST(PowerTopology, RequiresAtLeastOnePdu) {
  PowerTopology::Params p = topo_params();
  p.pdu_count = 0;
  EXPECT_THROW((void)PowerTopology{p}, std::invalid_argument);
}

}  // namespace
}  // namespace dcs::power
