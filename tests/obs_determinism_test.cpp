// Determinism contract of the observability layer: sim-domain trace events
// (including decision records, obs/decision.h) collected through per-task
// tracers and merged in task order are byte-identical regardless of how
// many worker threads executed the sweep or how it was sharded.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/datacenter.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "faults/schedule.h"
#include "obs/counters.h"
#include "obs/decision.h"
#include "obs/trace.h"
#include "sim/recorder.h"
#include "util/json.h"
#include "workload/yahoo_trace.h"

namespace dcs {
namespace {

using core::DataCenter;
using core::DataCenterConfig;
using core::GreedyStrategy;
using core::RunOptions;
using faults::Fault;
using faults::FaultKind;
using faults::FaultSchedule;

FaultSchedule scenario_schedule(std::size_t which) {
  FaultSchedule s;
  if (which == 1) {
    s.add(Fault{FaultKind::kUpsBankOutage, Duration::minutes(7),
                Duration::minutes(13), 0.4, faults::SensorChannel::kDemand});
  } else if (which == 2) {
    s.add(Fault{FaultKind::kChillerFailure, Duration::minutes(9),
                Duration::minutes(13), 0.4, faults::SensorChannel::kDemand});
  }
  return s;
}

/// Runs the faulted scenario sweep on `threads` workers and returns the
/// merged sim-event stream as JSONL.
std::string traced_sweep_jsonl(std::size_t threads) {
  workload::YahooTraceParams yp;
  yp.burst_degree = 3.2;
  yp.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(yp);

  DataCenterConfig config;
  config.fleet.pdu_count = 2;

  exp::SweepSpec spec("obs_determinism");
  spec.add_axis("scenario", {"nominal", "ups-outage", "chiller-loss"});

  std::vector<obs::Tracer> task_tracers(spec.tasks().size());
  const exp::SweepRun run = exp::run_sweep(
      spec, {"perf"},
      [&](const exp::SweepSpec::Task& task) {
        obs::Tracer& tracer = task_tracers[task.index];
        tracer.set_lane(static_cast<std::uint32_t>(task.index));
        const FaultSchedule schedule = scenario_schedule(task.level[0]);
        DataCenter dc(config);
        GreedyStrategy greedy;
        RunOptions opts;
        opts.tracer = &tracer;
        if (!schedule.empty()) opts.faults = &schedule;
        const core::RunResult r = dc.run(trace, &greedy, opts);
        return std::vector<double>{r.performance_factor};
      },
      {.threads = threads});
  EXPECT_EQ(run.rows.size(), task_tracers.size());

  obs::Tracer merged;
  for (const exp::SweepSpec::Task& task : spec.tasks()) {
    merged.name_lane(obs::Domain::kSim, static_cast<std::uint32_t>(task.index),
                     spec.label(task, 0));
    merged.merge_from(std::move(task_tracers[task.index]));
  }
  std::ostringstream out;
  merged.write_jsonl(out);
  return out.str();
}

TEST(ObsDeterminism, MergedTraceIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = traced_sweep_jsonl(1);
  const std::string parallel = traced_sweep_jsonl(8);
  EXPECT_EQ(serial, parallel);

  // The stream actually exercises the instrumented paths: controller phase
  // transitions and fault injection edges must both appear.
  EXPECT_NE(serial.find("\"phase\""), std::string::npos);
  EXPECT_NE(serial.find("\"inject\""), std::string::npos);
  EXPECT_NE(serial.find("\"clear\""), std::string::npos);
  EXPECT_FALSE(serial.empty());
}

TEST(ObsDeterminism, RepeatedRunsAreByteIdentical) {
  const std::string a = traced_sweep_jsonl(4);
  const std::string b = traced_sweep_jsonl(4);
  EXPECT_EQ(a, b);
}

/// Runs the faulted scenario sweep with decision emission on, optionally
/// split into `shards` sequentially-executed shard slices (each task still
/// lands in its task-indexed tracer slot, so the merge is shard-agnostic),
/// and returns the merged sim-event stream as JSONL.
std::string decision_sweep_jsonl(std::size_t threads, std::size_t shards) {
  workload::YahooTraceParams yp;
  yp.burst_degree = 3.2;
  yp.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(yp);

  DataCenterConfig config;
  config.fleet.pdu_count = 2;

  exp::SweepSpec spec("decision_determinism");
  spec.add_axis("scenario", {"nominal", "ups-outage", "chiller-loss"});

  std::vector<obs::Tracer> task_tracers(spec.tasks().size());
  const auto task_fn = [&](const exp::SweepSpec::Task& task) {
    obs::Tracer& tracer = task_tracers[task.index];
    tracer.set_lane(static_cast<std::uint32_t>(task.index));
    obs::DecisionLog decisions(&tracer);
    const FaultSchedule schedule = scenario_schedule(task.level[0]);
    DataCenter dc(config);
    GreedyStrategy greedy;
    RunOptions opts;
    opts.tracer = &tracer;
    opts.decisions = &decisions;
    if (!schedule.empty()) opts.faults = &schedule;
    const core::RunResult r = dc.run(trace, &greedy, opts);
    return std::vector<double>{r.performance_factor};
  };
  for (std::size_t s = 0; s < shards; ++s) {
    exp::RunnerOptions options;
    options.threads = threads;
    if (shards > 1) options.shard = exp::Shard{s, shards};
    exp::run_sweep(spec, {"perf"}, task_fn, options);
  }

  obs::Tracer merged;
  for (const exp::SweepSpec::Task& task : spec.tasks()) {
    merged.merge_from(std::move(task_tracers[task.index]));
  }
  std::ostringstream out;
  merged.write_jsonl(out);
  return out.str();
}

TEST(ObsDeterminism, DecisionStreamIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = decision_sweep_jsonl(1, 1);
  const std::string parallel = decision_sweep_jsonl(8, 1);
  EXPECT_EQ(serial, parallel);

  // The stream actually carries decision records with resolvable causes.
  EXPECT_NE(serial.find("\"cat\": \"decision\""), std::string::npos);
  EXPECT_NE(serial.find("\"sprint-onset\""), std::string::npos);
  EXPECT_NE(serial.find("\"fault-inject\""), std::string::npos);
  EXPECT_NE(serial.find("\"cause\""), std::string::npos);
}

TEST(ObsDeterminism, DecisionStreamIsByteIdenticalShardedVsUnsharded) {
  const std::string unsharded = decision_sweep_jsonl(2, 1);
  const std::string sharded = decision_sweep_jsonl(2, 2);
  EXPECT_EQ(unsharded, sharded);
}

/// Builds a small recorder (with equal-time overwrites, which the recorder
/// resolves to last-writer-wins), exports its channels as counter tracks
/// through per-task tracers on `threads` workers, and returns the merged
/// Chrome trace text.
std::string counter_sweep_chrome(std::size_t threads) {
  exp::SweepSpec spec("counter_determinism");
  spec.add_axis("run", {"a", "b", "c", "d"});

  std::vector<obs::Tracer> task_tracers(spec.tasks().size());
  exp::run_sweep(
      spec, {"ok"},
      [&](const exp::SweepSpec::Task& task) {
        sim::Recorder recorder;
        const double offset = static_cast<double>(task.index);
        for (int i = 0; i < 50; ++i) {
          const Duration t = Duration::seconds(i);
          recorder.record("ups_soc", t, 1.0 - 0.01 * i + offset);
          recorder.record("room_c", t, 22.0 + 0.05 * i);
          // Equal-time overwrite: the exported sample must be this value.
          recorder.record("room_c", t, 23.0 + 0.05 * i);
        }
        obs::Tracer& tracer = task_tracers[task.index];
        tracer.set_lane(static_cast<std::uint32_t>(task.index));
        obs::export_counters(recorder, tracer,
                             {.channels = {"ups_soc", "room_c", "absent"}});
        return std::vector<double>{1.0};
      },
      {.threads = threads});

  obs::Tracer merged;
  for (const exp::SweepSpec::Task& task : spec.tasks()) {
    merged.merge_from(std::move(task_tracers[task.index]));
  }
  std::ostringstream out;
  merged.write_chrome_trace(out);
  return out.str();
}

TEST(ObsDeterminism, CounterTracksAreByteIdenticalAcrossThreadCounts) {
  const std::string serial = counter_sweep_chrome(1);
  const std::string parallel = counter_sweep_chrome(8);
  EXPECT_EQ(serial, parallel);

  // Round trip: the export is valid Chrome JSON whose counter events carry
  // the overwritten (last-writer-wins) sample values.
  const json::Value doc = json::parse(serial);
  const json::Value& events = doc.at("traceEvents");
  std::size_t counters = 0;
  bool found_overwritten = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& e = events[i];
    if (e.at("ph").as_string() != "C") continue;
    ++counters;
    EXPECT_EQ(e.at("cat").as_string(), "recorder");
    if (e.at("name").as_string() == "room_c" &&
        e.at("ts").as_number() == 0.0) {
      EXPECT_DOUBLE_EQ(e.at("args").at("value").as_number(), 23.0);
      found_overwritten = true;
    }
  }
  // 4 tasks x 2 present channels x 50 samples; "absent" is skipped.
  EXPECT_EQ(counters, 4u * 2u * 50u);
  EXPECT_TRUE(found_overwritten);
}

}  // namespace
}  // namespace dcs
