// Determinism contract of the observability layer: sim-domain trace events
// collected through per-task tracers and merged in task order are
// byte-identical regardless of how many worker threads executed the sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/datacenter.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "faults/schedule.h"
#include "obs/trace.h"
#include "workload/yahoo_trace.h"

namespace dcs {
namespace {

using core::DataCenter;
using core::DataCenterConfig;
using core::GreedyStrategy;
using core::RunOptions;
using faults::Fault;
using faults::FaultKind;
using faults::FaultSchedule;

FaultSchedule scenario_schedule(std::size_t which) {
  FaultSchedule s;
  if (which == 1) {
    s.add(Fault{FaultKind::kUpsBankOutage, Duration::minutes(7),
                Duration::minutes(13), 0.4, faults::SensorChannel::kDemand});
  } else if (which == 2) {
    s.add(Fault{FaultKind::kChillerFailure, Duration::minutes(9),
                Duration::minutes(13), 0.4, faults::SensorChannel::kDemand});
  }
  return s;
}

/// Runs the faulted scenario sweep on `threads` workers and returns the
/// merged sim-event stream as JSONL.
std::string traced_sweep_jsonl(std::size_t threads) {
  workload::YahooTraceParams yp;
  yp.burst_degree = 3.2;
  yp.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(yp);

  DataCenterConfig config;
  config.fleet.pdu_count = 2;

  exp::SweepSpec spec("obs_determinism");
  spec.add_axis("scenario", {"nominal", "ups-outage", "chiller-loss"});

  std::vector<obs::Tracer> task_tracers(spec.tasks().size());
  const exp::SweepRun run = exp::run_sweep(
      spec, {"perf"},
      [&](const exp::SweepSpec::Task& task) {
        obs::Tracer& tracer = task_tracers[task.index];
        tracer.set_lane(static_cast<std::uint32_t>(task.index));
        const FaultSchedule schedule = scenario_schedule(task.level[0]);
        DataCenter dc(config);
        GreedyStrategy greedy;
        RunOptions opts;
        opts.tracer = &tracer;
        if (!schedule.empty()) opts.faults = &schedule;
        const core::RunResult r = dc.run(trace, &greedy, opts);
        return std::vector<double>{r.performance_factor};
      },
      {.threads = threads});
  EXPECT_EQ(run.rows.size(), task_tracers.size());

  obs::Tracer merged;
  for (const exp::SweepSpec::Task& task : spec.tasks()) {
    merged.name_lane(obs::Domain::kSim, static_cast<std::uint32_t>(task.index),
                     spec.label(task, 0));
    merged.merge_from(std::move(task_tracers[task.index]));
  }
  std::ostringstream out;
  merged.write_jsonl(out);
  return out.str();
}

TEST(ObsDeterminism, MergedTraceIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = traced_sweep_jsonl(1);
  const std::string parallel = traced_sweep_jsonl(8);
  EXPECT_EQ(serial, parallel);

  // The stream actually exercises the instrumented paths: controller phase
  // transitions and fault injection edges must both appear.
  EXPECT_NE(serial.find("\"phase\""), std::string::npos);
  EXPECT_NE(serial.find("\"inject\""), std::string::npos);
  EXPECT_NE(serial.find("\"clear\""), std::string::npos);
  EXPECT_FALSE(serial.empty());
}

TEST(ObsDeterminism, RepeatedRunsAreByteIdentical) {
  const std::string a = traced_sweep_jsonl(4);
  const std::string b = traced_sweep_jsonl(4);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dcs
