// Bit-identity contract of engine span skipping (sim/engine.h): a run with
// RunOptions::span_skip on must produce byte-identical results to the plain
// tick-by-tick loop — recorder channels, the structured trace (including
// every DecisionRecord), and all RunResult metrics. The leap replays the
// exact per-tick walk, so these tests compare *bits*, never tolerances.
//
// Scenarios mirror the experiment configs that exercise every substrate:
// the fig01 day trace (long quiescent spans — skipping engages), the
// fig09-style chaos run (random fault schedule — leaps must stop at every
// fault edge), and the fig12-style supply excursion (grid disturbance +
// UPS bridging).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/datacenter.h"
#include "core/strategy.h"
#include "faults/schedule.h"
#include "obs/decision.h"
#include "obs/trace.h"
#include "workload/ms_trace.h"

namespace dcs::core {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t out = 0;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

struct RunOutput {
  RunResult result;
  std::string trace;  // Chrome-trace export incl. decision records
};

/// One run of `scenario` with skipping on or off; everything else identical.
template <typename Scenario>
RunOutput run_once(const Scenario& scenario, bool span_skip) {
  obs::Tracer tracer;
  obs::DecisionLog decisions(&tracer);
  RunOutput out;
  out.result = scenario(span_skip, tracer, decisions);
  std::ostringstream trace_json;
  tracer.write_chrome_trace(trace_json);
  out.trace = trace_json.str();
  return out;
}

void expect_bit_identical(const RunOutput& skip, const RunOutput& plain) {
  // Recorder: same channel set, and every sample byte-identical.
  const auto channels = plain.result.recorder.channels();
  ASSERT_EQ(skip.result.recorder.channels(), channels);
  for (const std::string& name : channels) {
    const TimeSeries& a = skip.result.recorder.series(name);
    const TimeSeries& b = plain.result.recorder.series(name);
    ASSERT_EQ(a.size(), b.size()) << "channel " << name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(bits(a[i].time.sec()), bits(b[i].time.sec()))
          << "channel " << name << " sample " << i;
      EXPECT_EQ(bits(a[i].value), bits(b[i].value))
          << "channel " << name << " sample " << i;
    }
  }

  // Structured trace + decision stream: byte-identical JSONL.
  EXPECT_EQ(skip.trace, plain.trace);

  // RunResult metrics, compared at the bit level (engine_leaps and
  // engine_leaped_ticks are scheduling counters and differ by design).
  const RunResult& s = skip.result;
  const RunResult& p = plain.result;
  EXPECT_EQ(bits(s.avg_achieved), bits(p.avg_achieved));
  EXPECT_EQ(bits(s.avg_achieved_nosprint), bits(p.avg_achieved_nosprint));
  EXPECT_EQ(bits(s.performance_factor), bits(p.performance_factor));
  EXPECT_EQ(bits(s.drop_fraction), bits(p.drop_fraction));
  EXPECT_EQ(bits(s.avg_sprint_degree), bits(p.avg_sprint_degree));
  EXPECT_EQ(bits(s.sprint_time.sec()), bits(p.sprint_time.sec()));
  for (std::size_t i = 0; i < s.phase_time.size(); ++i) {
    EXPECT_EQ(bits(s.phase_time[i].sec()), bits(p.phase_time[i].sec()));
  }
  EXPECT_EQ(s.tripped, p.tripped);
  EXPECT_EQ(bits(s.trip_time.sec()), bits(p.trip_time.sec()));
  EXPECT_EQ(bits(s.ups_energy.j()), bits(p.ups_energy.j()));
  EXPECT_EQ(bits(s.tes_saved_energy.j()), bits(p.tes_saved_energy.j()));
  EXPECT_EQ(bits(s.pdu_overload_energy.j()), bits(p.pdu_overload_energy.j()));
  EXPECT_EQ(bits(s.dc_overload_energy.j()), bits(p.dc_overload_energy.j()));
  EXPECT_EQ(bits(s.peak_room_temperature.c()), bits(p.peak_room_temperature.c()));
  EXPECT_EQ(bits(s.min_ups_soc), bits(p.min_ups_soc));
  EXPECT_EQ(bits(s.min_tes_soc), bits(p.min_tes_soc));
  EXPECT_EQ(s.ups_discharge_events, p.ups_discharge_events);
  EXPECT_EQ(bits(s.ups_equivalent_cycles), bits(p.ups_equivalent_cycles));
  EXPECT_EQ(bits(s.ups_max_depth), bits(p.ups_max_depth));
  EXPECT_EQ(s.max_degradation, p.max_degradation);
  for (std::size_t i = 0; i < s.degradation_time.size(); ++i) {
    EXPECT_EQ(bits(s.degradation_time[i].sec()),
              bits(p.degradation_time[i].sec()));
  }
  EXPECT_EQ(s.watchdog.checks, p.watchdog.checks);
  EXPECT_EQ(s.watchdog.violations, p.watchdog.violations);
}

DataCenterConfig small_config() {
  DataCenterConfig config;
  config.fleet.pdu_count = 4;  // results are invariant to the PDU count
  return config;
}

TEST(BitIdentity, Fig01DayTraceSliceSkipEqualsPlain) {
  // Two hours of the day trace (30 s samples, 1 s control period): long
  // flat spans between samples are exactly where skipping engages.
  const TimeSeries day =
      workload::generate_ms_day_trace().slice(Duration::zero(),
                                              Duration::hours(2));
  const TimeSeries trace = day.scaled(1.0 / 4.0);
  DataCenter dc(small_config());
  const auto scenario = [&](bool span_skip, obs::Tracer& tracer,
                            obs::DecisionLog& decisions) {
    GreedyStrategy greedy;
    RunOptions opts;
    opts.record = true;
    opts.span_skip = span_skip;
    opts.tracer = &tracer;
    opts.decisions = &decisions;
    return dc.run(trace, &greedy, opts);
  };
  const RunOutput skip = run_once(scenario, true);
  const RunOutput plain = run_once(scenario, false);
  // The scenario must actually exercise the leap path, or this test proves
  // nothing: 30 s flat spans at a 1 s step leap ~29 ticks at a time.
  EXPECT_GT(skip.result.engine_leaps, 0u);
  EXPECT_GT(skip.result.engine_leaped_ticks, 1000u);
  EXPECT_EQ(plain.result.engine_leaps, 0u);
  expect_bit_identical(skip, plain);
}

TEST(BitIdentity, Fig09ChaosFaultScheduleSkipEqualsPlain) {
  // Random-but-seeded infrastructure faults: leaps must stop at every fault
  // edge (the injector's push and its decision records fire on the exact
  // tick), and the degraded plant must evolve identically.
  const TimeSeries trace = workload::generate_ms_trace();
  const faults::FaultSchedule chaos =
      faults::FaultSchedule::random(0xC4A05u, trace.end_time(), 0.7);
  ASSERT_FALSE(chaos.empty());
  DataCenter dc(small_config());
  const auto scenario = [&](bool span_skip, obs::Tracer& tracer,
                            obs::DecisionLog& decisions) {
    GreedyStrategy greedy;
    RunOptions opts;
    opts.record = true;
    opts.span_skip = span_skip;
    opts.tracer = &tracer;
    opts.decisions = &decisions;
    opts.faults = &chaos;
    return dc.run(trace, &greedy, opts);
  };
  expect_bit_identical(run_once(scenario, true), run_once(scenario, false));
}

TEST(BitIdentity, Fig12SupplyExcursionSkipEqualsPlain) {
  // Utility-feed dip mid-run (fig12-style disturbance): the supply series'
  // sample boundaries bound every leap, and the sprint-ending grid logic
  // must fire on the exact tick either way.
  const TimeSeries trace = workload::generate_ms_trace();
  TimeSeries supply;
  supply.push_back(Duration::zero(), 1.0);
  supply.push_back(Duration::minutes(7), 0.85);
  supply.push_back(Duration::minutes(12), 1.0);
  supply.push_back(trace.end_time(), 1.0);
  DataCenter dc(small_config());
  const auto scenario = [&](bool span_skip, obs::Tracer& tracer,
                            obs::DecisionLog& decisions) {
    GreedyStrategy greedy;
    RunOptions opts;
    opts.record = true;
    opts.span_skip = span_skip;
    opts.tracer = &tracer;
    opts.decisions = &decisions;
    opts.supply_fraction = &supply;
    return dc.run(trace, &greedy, opts);
  };
  expect_bit_identical(run_once(scenario, true), run_once(scenario, false));
}

TEST(BitIdentity, FaultScheduleWithDayTraceLeapsBetweenEdges) {
  // Faults on the *day* trace: skipping engages between fault edges yet
  // every metric still matches the plain loop bit for bit.
  const TimeSeries day =
      workload::generate_ms_day_trace().slice(Duration::zero(),
                                              Duration::hours(1));
  const TimeSeries trace = day.scaled(1.0 / 4.0);
  faults::FaultSchedule schedule;
  schedule.add({.kind = faults::FaultKind::kChillerFailure,
                .start = Duration::minutes(10),
                .end = Duration::minutes(20),
                .magnitude = 0.4});
  schedule.add({.kind = faults::FaultKind::kUpsBankOutage,
                .start = Duration::minutes(30),
                .end = Duration::minutes(40),
                .magnitude = 0.5});
  DataCenter dc(small_config());
  const auto scenario = [&](bool span_skip, obs::Tracer& tracer,
                            obs::DecisionLog& decisions) {
    GreedyStrategy greedy;
    RunOptions opts;
    opts.record = true;
    opts.span_skip = span_skip;
    opts.tracer = &tracer;
    opts.decisions = &decisions;
    opts.faults = &schedule;
    return dc.run(trace, &greedy, opts);
  };
  const RunOutput skip = run_once(scenario, true);
  const RunOutput plain = run_once(scenario, false);
  EXPECT_GT(skip.result.engine_leaps, 0u);
  expect_bit_identical(skip, plain);
}

}  // namespace
}  // namespace dcs::core
