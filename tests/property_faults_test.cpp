// Property tests over randomized fault scenarios: whatever the injector
// throws at it (within the survivable envelope of FaultSchedule::random),
// a controlled run must never trip a breaker and never violate a watchdog
// invariant — and for a fixed scenario shape, performance must not improve
// as the faults get worse.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/datacenter.h"
#include "faults/schedule.h"
#include "workload/yahoo_trace.h"

namespace dcs::core {
namespace {

constexpr std::uint64_t kSeeds = 50;

DataCenterConfig small_config() {
  DataCenterConfig c;
  c.fleet.pdu_count = 2;
  return c;
}

TimeSeries property_trace() {
  workload::YahooTraceParams p;
  p.length = Duration::minutes(20);
  p.burst_degree = 2.6;
  p.burst_duration = Duration::minutes(10);
  return workload::generate_yahoo_trace(p);
}

RunResult run_scenario(DataCenter& dc, const TimeSeries& trace,
                       std::uint64_t seed, double severity) {
  const faults::FaultSchedule schedule =
      faults::FaultSchedule::random(seed, trace.end_time(), severity);
  ConstantBoundStrategy bound(2.4);
  return dc.run(trace, &bound, {.faults = &schedule});
}

TEST(FaultProperty, ControlledRunSurvivesEveryRandomScenario) {
  DataCenter dc(small_config());
  const TimeSeries trace = property_trace();
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const RunResult r = run_scenario(dc, trace, seed, 1.0);
    ASSERT_FALSE(r.tripped) << "seed " << seed;
    ASSERT_TRUE(r.watchdog.ok())
        << "seed " << seed << ": " << r.watchdog.first_message;
    // Degradation may cost the whole sprint (factor exactly 1) but the
    // baseline service level is never sacrificed.
    ASSERT_GE(r.performance_factor, 1.0 - 1e-9) << "seed " << seed;
  }
}

TEST(FaultProperty, PerformanceDegradesMonotonicallyWithSeverity) {
  // Same seed = same fault kinds and windows; only the magnitudes scale.
  // Worse faults must never help (small tolerance absorbs the discrete
  // feasibility search snapping between core counts).
  DataCenter dc(small_config());
  const TimeSeries trace = property_trace();
  constexpr double kSeverities[] = {0.0, 0.35, 0.7, 1.0};
  constexpr double kTolerance = 0.02;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    double prev = 0.0;
    for (std::size_t i = 0; i < std::size(kSeverities); ++i) {
      const RunResult r = run_scenario(dc, trace, seed, kSeverities[i]);
      ASSERT_FALSE(r.tripped) << "seed " << seed;
      if (i > 0) {
        ASSERT_LE(r.performance_factor, prev + kTolerance)
            << "seed " << seed << ": severity " << kSeverities[i]
            << " outperformed severity " << kSeverities[i - 1];
      }
      prev = r.performance_factor;
    }
  }
}

TEST(FaultProperty, ZeroSeverityMatchesFaultFreeRun) {
  // severity 0 zeroes every magnitude: the injector runs but must change
  // nothing about the physics.
  DataCenter dc(small_config());
  const TimeSeries trace = property_trace();
  ConstantBoundStrategy bound(2.4);
  const RunResult clean = dc.run(trace, &bound);
  for (std::uint64_t seed : {7u, 23u, 41u}) {
    const RunResult r = run_scenario(dc, trace, seed, 0.0);
    EXPECT_EQ(r.performance_factor, clean.performance_factor) << seed;
    EXPECT_EQ(r.ups_energy.j(), clean.ups_energy.j()) << seed;
  }
}

}  // namespace
}  // namespace dcs::core
