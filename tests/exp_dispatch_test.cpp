// Supervisor tests against the scriptable fake worker (tests/fake_worker.cpp,
// path injected by CMake as FAKE_WORKER_PATH): clean completion, crash and
// restart under the retry budget, stall-timeout kills, retry-budget
// exhaustion with a partial-merge report, chaos-mode determinism of the
// merged checkpoint, and a cooperative drain.
#include "exp/dispatch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/checkpoint.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "util/json.h"

namespace dcs::exp {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/dispatch_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The fake worker's grid and task function, duplicated here so tests can
/// produce the unsharded, uninterrupted reference checkpoint in-process.
/// Must match fake_worker.cpp.
SweepSpec fake_spec(std::size_t tasks) {
  SweepSpec spec("fake", /*base_seed=*/0xFA4EULL);
  std::vector<double> values(tasks);
  for (std::size_t i = 0; i < tasks; ++i) values[i] = static_cast<double>(i);
  spec.add_axis("x", values, 0);
  return spec;
}

std::string reference_checkpoint(std::size_t tasks) {
  const std::string path = std::string(::testing::TempDir()) +
                           "/dispatch_reference_" + std::to_string(tasks) +
                           ".ckpt.jsonl";
  fs::remove(path);
  RunnerOptions options;
  options.threads = 1;
  options.checkpoint_path = path;
  (void)run_sweep(
      fake_spec(tasks), {"value"},
      [](const SweepSpec::Task& task) {
        return std::vector<double>{
            static_cast<double>(task.seed % 10007) / 3.0};
      },
      options);
  return path;
}

DispatchOptions base_options(const std::string& dir, std::size_t tasks,
                             std::size_t shards) {
  DispatchOptions options;
  options.command = {FAKE_WORKER_PATH, "sweep=fake",
                     "tasks=" + std::to_string(tasks),
                     "attempt_dir=" + dir};
  options.shards = shards;
  options.work_dir = dir;
  options.poll_interval_s = 0.02;
  options.backoff_base_s = 0.05;
  options.backoff_max_s = 0.2;
  options.stall_timeout_s = 20.0;  // generous; stall tests tighten it
  return options;
}

TEST(ExpDispatch, CleanCompletionMergesByteIdentical) {
  const std::string dir = fresh_dir("clean");
  const std::size_t tasks = 24;
  const DispatchReport report =
      dispatch_sweep(base_options(dir, tasks, /*shards=*/4));

  EXPECT_EQ(report.status, "complete");
  EXPECT_EQ(report.exit_code(), 0);
  ASSERT_EQ(report.shard_status.size(), 4u);
  for (const ShardStatus& s : report.shard_status) {
    EXPECT_EQ(s.state, "completed");
    EXPECT_EQ(s.restarts, 0u);
    ASSERT_EQ(s.attempts.size(), 1u);
    EXPECT_EQ(s.attempts[0].exit_code, 0);
    EXPECT_EQ(s.attempts[0].outcome, "completed");
  }
  ASSERT_EQ(report.merged.size(), 1u);
  EXPECT_TRUE(report.merged[0].complete());
  EXPECT_EQ(report.merged[0].rows, tasks);
  EXPECT_TRUE(report.merged[0].missing.empty());

  // The merged checkpoint must be byte-identical to an unsharded,
  // uninterrupted in-process run of the same grid.
  EXPECT_EQ(slurp(report.merged[0].path), slurp(reference_checkpoint(tasks)));
  fs::remove_all(dir);
}

TEST(ExpDispatch, CrashedWorkersRestartWithBackoffAndFinish) {
  const std::string dir = fresh_dir("crash");
  const std::size_t tasks = 16;
  DispatchOptions options = base_options(dir, tasks, /*shards=*/2);
  // Every shard crashes twice (after 2 fresh rows each attempt), then
  // succeeds on the third attempt — inside the budget of 3.
  options.command.push_back("crash_attempts=2");
  options.command.push_back("crash_rows=2");
  options.max_restarts = 3;

  const DispatchReport report = dispatch_sweep(options);
  EXPECT_EQ(report.status, "complete");
  for (const ShardStatus& s : report.shard_status) {
    EXPECT_EQ(s.state, "completed");
    EXPECT_EQ(s.restarts, 2u);
    ASSERT_EQ(s.attempts.size(), 3u);
    EXPECT_EQ(s.attempts[0].outcome, "crashed");
    EXPECT_EQ(s.attempts[0].exit_code, 42);
    EXPECT_EQ(s.attempts[1].outcome, "crashed");
    EXPECT_EQ(s.attempts[2].outcome, "completed");
    // Crash-only recovery: each attempt resumed past its predecessor.
    EXPECT_GT(s.attempts[1].checkpoint_bytes, s.attempts[0].checkpoint_bytes);
  }
  ASSERT_EQ(report.merged.size(), 1u);
  EXPECT_EQ(slurp(report.merged[0].path), slurp(reference_checkpoint(tasks)));
  fs::remove_all(dir);
}

TEST(ExpDispatch, StalledWorkerIsKilledAndRestarted) {
  const std::string dir = fresh_dir("stall");
  const std::size_t tasks = 8;
  DispatchOptions options = base_options(dir, tasks, /*shards=*/2);
  // Attempt 1 of each shard writes one row and hangs; the supervisor must
  // kill it on the stall timeout and the restart completes the slice.
  options.command.push_back("stall_attempts=1");
  options.stall_timeout_s = 0.3;
  options.max_restarts = 2;

  const DispatchReport report = dispatch_sweep(options);
  EXPECT_EQ(report.status, "complete");
  for (const ShardStatus& s : report.shard_status) {
    EXPECT_EQ(s.state, "completed");
    EXPECT_EQ(s.restarts, 1u);
    ASSERT_EQ(s.attempts.size(), 2u);
    EXPECT_EQ(s.attempts[0].outcome, "stalled");
    EXPECT_EQ(s.attempts[0].term_signal, SIGKILL);
    EXPECT_EQ(s.attempts[1].outcome, "completed");
  }
  ASSERT_EQ(report.merged.size(), 1u);
  EXPECT_EQ(slurp(report.merged[0].path), slurp(reference_checkpoint(tasks)));
  fs::remove_all(dir);
}

TEST(ExpDispatch, RetryBudgetExhaustionDegradesWithPartialMerge) {
  const std::string dir = fresh_dir("budget");
  const std::size_t tasks = 12;
  DispatchOptions options = base_options(dir, tasks, /*shards=*/2);
  // Shard 1 fails on every attempt; with a zero retry budget its first
  // failure is final. Shard 0 completes normally.
  options.command.push_back("fail_attempts=1000000");
  options.command.push_back("fail_shard=1");
  options.max_restarts = 0;

  const DispatchReport report = dispatch_sweep(options);
  EXPECT_EQ(report.status, "degraded");
  EXPECT_EQ(report.exit_code(), 1);
  EXPECT_EQ(report.shard_status[0].state, "completed");
  EXPECT_EQ(report.shard_status[1].state, "failed");
  EXPECT_EQ(report.shard_status[1].attempts.size(), 1u);

  // Graceful degradation: shard 0's half is merged and usable, and the
  // report names exactly the failed shard's task indices as missing.
  ASSERT_EQ(report.merged.size(), 1u);
  const MergedSweep& merged = report.merged[0];
  EXPECT_FALSE(merged.complete());
  const auto [first, last] = shard_range(tasks, {1, 2});
  std::vector<std::size_t> expected_missing;
  for (std::size_t t = first; t < last; ++t) expected_missing.push_back(t);
  EXPECT_EQ(merged.missing, expected_missing);
  EXPECT_EQ(merged.rows, tasks - expected_missing.size());

  // The partial merged checkpoint still loads and resumes.
  const CheckpointData partial = load_checkpoint(merged.path);
  ASSERT_TRUE(partial.present);
  EXPECT_FALSE(partial.complete());
  EXPECT_EQ(partial.rows.size(), merged.rows);

  // The machine-readable report names the missing indices too.
  const json::Value doc = json::parse(dispatch_report_json(report));
  EXPECT_EQ(doc.at("status").as_string(), "degraded");
  const json::Value& missing = doc.at("merged")[0].at("missing");
  ASSERT_EQ(missing.size(), expected_missing.size());
  for (std::size_t i = 0; i < missing.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(missing[i].as_number()),
              expected_missing[i]);
  }
  fs::remove_all(dir);
}

TEST(ExpDispatch, ResumeReportRecomputesOnlyMissingTasks) {
  const std::string dir = fresh_dir("resume_src");
  const std::size_t tasks = 12;
  DispatchOptions options = base_options(dir, tasks, /*shards=*/2);
  // Degraded first run: shard 1 burns its (zero) budget, so its slice
  // [6, 12) lands in the report as missing.
  options.command.push_back("fail_attempts=1000000");
  options.command.push_back("fail_shard=1");
  options.max_restarts = 0;
  const DispatchReport degraded = dispatch_sweep(options);
  ASSERT_EQ(degraded.status, "degraded");
  const std::string report_path = dir + "/dispatch_report.json";
  ASSERT_TRUE(write_dispatch_report(report_path, degraded));

  // Resume into a fresh work dir with a *different* shard count: missing
  // task indices are global, so re-slicing them three ways is still exact.
  // Slices are [0,4) [4,8) [8,12); only 6..11 are missing, so shard 0 has
  // nothing to do and must complete without spawning a single attempt.
  const std::string resume_dir = fresh_dir("resume_dst");
  DispatchOptions resume = base_options(resume_dir, tasks, /*shards=*/3);
  resume.resume_report_path = report_path;
  const DispatchReport report = dispatch_sweep(resume);

  EXPECT_EQ(report.status, "complete");
  ASSERT_EQ(report.shard_status.size(), 3u);
  EXPECT_EQ(report.shard_status[0].state, "completed");
  EXPECT_TRUE(report.shard_status[0].attempts.empty())
      << "a shard with no pending tasks must be skipped, not spawned";
  EXPECT_EQ(report.shard_status[1].attempts.size(), 1u);
  EXPECT_EQ(report.shard_status[2].attempts.size(), 1u);
  ASSERT_EQ(report.merged.size(), 1u);
  EXPECT_TRUE(report.merged[0].complete());
  // Seed + recompute merges byte-identical to an unsharded clean run.
  EXPECT_EQ(slurp(report.merged[0].path), slurp(reference_checkpoint(tasks)));
  fs::remove_all(dir);
  fs::remove_all(resume_dir);
}

TEST(ExpDispatch, ResumeFromCompleteReportSkipsEveryShard) {
  const std::string dir = fresh_dir("resume_complete_src");
  const std::size_t tasks = 8;
  const DispatchReport clean =
      dispatch_sweep(base_options(dir, tasks, /*shards=*/2));
  ASSERT_EQ(clean.status, "complete");
  const std::string report_path = dir + "/dispatch_report.json";
  ASSERT_TRUE(write_dispatch_report(report_path, clean));

  const std::string resume_dir = fresh_dir("resume_complete_dst");
  DispatchOptions resume = base_options(resume_dir, tasks, /*shards=*/2);
  resume.resume_report_path = report_path;
  const DispatchReport report = dispatch_sweep(resume);

  EXPECT_EQ(report.status, "complete");
  for (const ShardStatus& s : report.shard_status) {
    EXPECT_EQ(s.state, "completed");
    EXPECT_TRUE(s.attempts.empty());
  }
  ASSERT_EQ(report.merged.size(), 1u);
  EXPECT_TRUE(report.merged[0].complete());
  EXPECT_EQ(slurp(report.merged[0].path), slurp(reference_checkpoint(tasks)));
  fs::remove_all(dir);
  fs::remove_all(resume_dir);
}

TEST(ExpDispatch, ResumeReportRejectsUnreadableReport) {
  const std::string dir = fresh_dir("resume_bad");
  DispatchOptions options = base_options(dir, /*tasks=*/4, /*shards=*/1);
  options.resume_report_path = dir + "/no_such_report.json";
  EXPECT_THROW((void)dispatch_sweep(options), std::invalid_argument);

  // A JSON file that is not a dispatch report is rejected too.
  const std::string not_report = dir + "/not_report.json";
  { std::ofstream(not_report) << "{\"hello\": 1}\n"; }
  options.resume_report_path = not_report;
  EXPECT_THROW((void)dispatch_sweep(options), std::invalid_argument);
  fs::remove_all(dir);
}

TEST(ExpDispatch, ChaosKillsAreFreeAndMergeDeterministically) {
  const std::string dir = fresh_dir("chaos");
  const std::size_t tasks = 60;
  DispatchOptions options = base_options(dir, tasks, /*shards=*/4);
  // ~15 rows/shard at 15 ms each ≈ 225 ms of work against an 80 ms poll
  // with certain kills: every shard is chaos-killed at least twice before
  // it can finish, yet each attempt lands a few more rows first.
  options.command.push_back("sleep_ms=15");
  options.poll_interval_s = 0.08;
  options.chaos_kill_prob = 1.0;
  options.chaos_seed = 7;
  // Chaos kills are self-inflicted and must consume no retry budget: a
  // zero budget still completes.
  options.max_restarts = 0;

  const DispatchReport report = dispatch_sweep(options);
  EXPECT_EQ(report.status, "complete");
  EXPECT_GE(report.chaos_kills, 3u)
      << "the chaos schedule must actually kill workers";
  for (const ShardStatus& s : report.shard_status) {
    EXPECT_EQ(s.state, "completed");
    EXPECT_EQ(s.restarts, 0u) << "chaos kills must not consume the budget";
  }
  ASSERT_EQ(report.merged.size(), 1u);
  EXPECT_TRUE(report.merged[0].complete());
  // Determinism under fire: the chaos-ridden merge is byte-identical to an
  // unsharded, uninterrupted run.
  EXPECT_EQ(slurp(report.merged[0].path), slurp(reference_checkpoint(tasks)));
  fs::remove_all(dir);
}

TEST(ExpDispatch, DrainInterruptsAndLeavesResumableState) {
  const std::string dir = fresh_dir("drain");
  const std::size_t tasks = 40;
  DispatchOptions options = base_options(dir, tasks, /*shards=*/2);
  options.command.push_back("sleep_ms=100");  // slow enough to interrupt
  options.grace_period_s = 2.0;
  std::atomic<bool> stop{false};
  options.stop = &stop;

  std::thread trigger([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
  });
  const DispatchReport report = dispatch_sweep(options);
  trigger.join();

  EXPECT_EQ(report.status, "interrupted");
  EXPECT_EQ(report.exit_code(), 3);
  // Whatever was checkpointed before the drain still merges and loads —
  // the resumable state the report advertises.
  for (const ShardStatus& s : report.shard_status) {
    EXPECT_TRUE(s.state == "interrupted" || s.state == "completed");
  }
  if (!report.merged.empty() && report.merged[0].error.empty()) {
    const CheckpointData partial = load_checkpoint(report.merged[0].path);
    EXPECT_TRUE(partial.present || partial.rows.empty());
  }
  fs::remove_all(dir);
}

TEST(ExpDispatch, TelemetryDispatchMergesAlignedTimelineAcrossRestarts) {
  const std::string dir = fresh_dir("telemetry");
  const std::size_t tasks = 16;
  DispatchOptions options = base_options(dir, tasks, /*shards=*/2);
  options.telemetry = true;
  options.status_interval_s = 0.05;
  std::ostringstream log;
  options.log = &log;
  // Shard crashes exercise the multi-attempt stream naming and prove the
  // merge tolerates the torn, end-marker-less streams crashes leave.
  options.command.push_back("crash_attempts=1");
  options.command.push_back("crash_rows=2");
  options.command.push_back("sleep_ms=20");  // outlive the status interval
  options.max_restarts = 2;

  const DispatchReport report = dispatch_sweep(options);
  ASSERT_EQ(report.status, "complete");
  EXPECT_TRUE(report.telemetry);
  ASSERT_TRUE(report.timeline.ok()) << report.timeline.error;
  // dispatcher + 2 shards x 2 attempts, every stream headered.
  EXPECT_EQ(report.timeline.sources, 5u);
  EXPECT_EQ(report.timeline.aligned_sources, 5u);
  EXPECT_GT(report.timeline.events, 0u);
  EXPECT_GT(report.timeline.base_epoch_unix_us, 0);

  // Live supervision: heartbeats fill per-shard progress, and the status
  // ticker reported it while workers ran.
  for (const ShardStatus& s : report.shard_status) {
    EXPECT_EQ(s.tasks_done, tasks / 2);
    EXPECT_EQ(s.tasks_total, tasks / 2);
  }
  EXPECT_NE(log.str().find("status:"), std::string::npos);

  // All three timeline encodings landed, plus the folded stacks. Crashed
  // first attempts die before writing their stack line, so the keys carry
  // the completing attempts' src tags.
  EXPECT_TRUE(fs::is_regular_file(report.timeline.jsonl_path));
  EXPECT_TRUE(fs::is_regular_file(report.timeline.chrome_path));
  EXPECT_TRUE(fs::is_regular_file(report.timeline.perfetto_path));
  ASSERT_TRUE(fs::is_regular_file(report.timeline.stacks_path));
  const std::string stacks = slurp(report.timeline.stacks_path);
  EXPECT_NE(stacks.find("shard0#2;fake;task"), std::string::npos);
  EXPECT_NE(stacks.find("shard1#2;fake;task"), std::string::npos);

  // The merged timeline carries every source: supervisor lifecycle events
  // tagged "dispatcher" and worker task instants per shard and attempt.
  const std::string timeline = slurp(report.timeline.jsonl_path);
  EXPECT_NE(timeline.find("\"src\":\"dispatcher\""), std::string::npos);
  EXPECT_NE(timeline.find("\"name\":\"spawn\""), std::string::npos);
  EXPECT_NE(timeline.find("\"name\":\"restart\""), std::string::npos);
  EXPECT_NE(timeline.find("\"src\":\"shard0\""), std::string::npos);
  EXPECT_NE(timeline.find("\"src\":\"shard0#2\""), std::string::npos);
  EXPECT_NE(timeline.find("\"src\":\"shard1#2\""), std::string::npos);

  // Report JSON carries the telemetry block.
  const json::Value doc = json::parse(dispatch_report_json(report));
  EXPECT_TRUE(doc.at("telemetry").as_bool());
  EXPECT_EQ(doc.at("timeline").at("sources").as_number(), 5.0);
  EXPECT_EQ(doc.at("shard_status")[0].at("tasks_done").as_number(),
            static_cast<double>(tasks / 2));

  // Restart-and-remerge determinism: a second merge over the same work dir
  // (what a dispatcher restart does) must reproduce the same bytes.
  TimelineOptions remerge;
  remerge.work_dir = dir;
  remerge.shards = 2;
  remerge.out_dir = dir + "/remerged";
  const TimelineSummary again = merge_timeline(remerge);
  ASSERT_TRUE(again.ok()) << again.error;
  EXPECT_EQ(slurp(again.jsonl_path), timeline);
  EXPECT_EQ(slurp(again.perfetto_path), slurp(report.timeline.perfetto_path));

  // The sweep result is untouched by telemetry: still byte-identical to the
  // unsharded reference.
  ASSERT_EQ(report.merged.size(), 1u);
  EXPECT_EQ(slurp(report.merged[0].path), slurp(reference_checkpoint(tasks)));
  fs::remove_all(dir);
}

TEST(ExpDispatch, TelemetryOffLeavesNoStreamsAndNoTimeline) {
  const std::string dir = fresh_dir("telemetry_off");
  const DispatchReport report =
      dispatch_sweep(base_options(dir, /*tasks=*/8, /*shards=*/2));
  ASSERT_EQ(report.status, "complete");
  EXPECT_FALSE(report.telemetry);
  EXPECT_FALSE(fs::exists(dir + "/dispatcher_telemetry.jsonl"));
  EXPECT_FALSE(fs::exists(dir + "/shard_0/telemetry_0001.jsonl"));
  EXPECT_FALSE(fs::exists(dir + "/merged/timeline.jsonl"));
  const json::Value doc = json::parse(dispatch_report_json(report));
  EXPECT_FALSE(doc.at("telemetry").as_bool());
  EXPECT_EQ(doc.find("timeline"), nullptr);
  fs::remove_all(dir);
}

TEST(ExpDispatch, ReportJsonRoundTrips) {
  DispatchReport report;
  report.status = "degraded";
  report.shards = 2;
  report.chaos_kills = 1;
  report.wall_s = 1.5;
  ShardStatus shard;
  shard.shard = 0;
  shard.state = "failed";
  shard.restarts = 3;
  AttemptResult attempt;
  attempt.exit_code = 42;
  attempt.outcome = "crashed";
  attempt.wall_s = 0.25;
  shard.attempts.push_back(attempt);
  report.shard_status.push_back(shard);
  MergedSweep merged;
  merged.sweep = "fake";
  merged.task_count = 4;
  merged.rows = 2;
  merged.missing = {2, 3};
  report.merged.push_back(merged);

  const json::Value doc = json::parse(dispatch_report_json(report));
  EXPECT_EQ(doc.at("status").as_string(), "degraded");
  EXPECT_EQ(doc.at("shards").as_number(), 2.0);
  EXPECT_EQ(doc.at("shard_status")[0].at("attempts")[0].at("exit_code")
                .as_number(),
            42.0);
  EXPECT_EQ(doc.at("merged")[0].at("missing").size(), 2u);
  EXPECT_FALSE(doc.at("merged")[0].at("complete").as_bool());

  const std::string dir = fresh_dir("report");
  const std::string path = dir + "/report.json";
  ASSERT_TRUE(write_dispatch_report(path, report));
  EXPECT_EQ(slurp(path), dispatch_report_json(report));
  EXPECT_FALSE(write_dispatch_report(dir + "/no_such_dir/report.json",
                                     report));
  fs::remove_all(dir);
}

TEST(ExpDispatch, RejectsUnusableOptions) {
  DispatchOptions options;
  EXPECT_THROW((void)dispatch_sweep(options), std::invalid_argument);
  options.command = {"/bin/true"};
  EXPECT_THROW((void)dispatch_sweep(options), std::invalid_argument);
  options.work_dir = fresh_dir("reject");
  options.shards = 0;
  EXPECT_THROW((void)dispatch_sweep(options), std::invalid_argument);
  fs::remove_all(options.work_dir);
}

}  // namespace
}  // namespace dcs::exp
