#include "exp/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dcs::exp {
namespace {

TEST(ExpThreadPool, ResolveThreadsIsAlwaysPositive) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(ExpThreadPool, RunsMoreTasksThanThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&done] { done.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 64);
}

TEST(ExpThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
    }
  }  // ~ThreadPool joins after draining
  EXPECT_EQ(done.load(), 32);
}

TEST(ExpThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> future =
      pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ExpThreadPool, ParallelForEmptyIsNoop) {
  parallel_for(0, 4, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ExpThreadPool, ParallelForWritesEverySlotExactlyOnce) {
  std::vector<int> slots(1000, 0);
  parallel_for(slots.size(), 8, [&](std::size_t i) { ++slots[i]; });
  EXPECT_EQ(std::accumulate(slots.begin(), slots.end(), 0), 1000);
  EXPECT_TRUE(std::all_of(slots.begin(), slots.end(),
                          [](int v) { return v == 1; }));
}

TEST(ExpThreadPool, ParallelForSerialMatchesParallel) {
  std::vector<double> serial(100), parallel(100);
  const auto fn = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + 1.0;
  };
  parallel_for(100, 1, [&](std::size_t i) { serial[i] = fn(i); });
  parallel_for(100, 8, [&](std::size_t i) { parallel[i] = fn(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(ExpThreadPool, ParallelForRethrowsLowestIndexException) {
  // Every index is attempted even after a failure, so the lowest-index
  // exception wins deterministically regardless of scheduling.
  std::atomic<int> attempted{0};
  const auto run = [&](std::size_t threads) {
    attempted = 0;
    try {
      parallel_for(16, threads, [&](std::size_t i) {
        attempted.fetch_add(1);
        if (i == 11) throw std::runtime_error("task 11");
        if (i == 3) throw std::runtime_error("task 3");
      });
      ADD_FAILURE() << "expected an exception";
      return std::string();
    } catch (const std::runtime_error& e) {
      return std::string(e.what());
    }
  };
  EXPECT_EQ(run(1), "task 3");
  EXPECT_EQ(attempted.load(), 16);
  EXPECT_EQ(run(4), "task 3");
  EXPECT_EQ(attempted.load(), 16);
}

}  // namespace
}  // namespace dcs::exp
