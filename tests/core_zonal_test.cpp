#include "core/zonal_controller.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/datacenter.h"
#include "obs/counters.h"
#include "sim/recorder.h"
#include "workload/yahoo_trace.h"

namespace dcs::core {
namespace {

DataCenterConfig small_config(std::size_t pdus = 4) {
  DataCenterConfig c;
  c.fleet.pdu_count = pdus;
  return c;
}

TimeSeries flat(double level, Duration end = Duration::minutes(30)) {
  TimeSeries t;
  t.push_back(Duration::zero(), level);
  t.push_back(end, level);
  return t;
}

TEST(Zonal, ZonesMustTileTopology) {
  const TimeSeries d = flat(0.5);
  EXPECT_THROW((void)ZonalController(small_config(4), {{3, &d}}),
               std::invalid_argument);
  EXPECT_THROW((void)ZonalController(small_config(4), {{3, &d}, {2, &d}}),
               std::invalid_argument);
  EXPECT_NO_THROW(ZonalController(small_config(4), {{2, &d}, {2, &d}}));
  EXPECT_THROW((void)ZonalController(small_config(4), {}), std::invalid_argument);
  EXPECT_THROW((void)ZonalController(small_config(4), {{4, nullptr}}),
               std::invalid_argument);
}

TEST(Zonal, QuietZonesServeTheirDemandExactly) {
  const TimeSeries d = flat(0.6);
  ZonalController ctl(small_config(4), {{2, &d}, {2, &d}});
  const ZonalRunResult r = ctl.run();
  EXPECT_FALSE(r.tripped);
  EXPECT_NEAR(r.performance_factor[0], 1.0, 1e-9);
  EXPECT_NEAR(r.performance_factor[1], 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.sprint_time.sec(), 0.0);
}

TEST(Zonal, HotZoneSprintsWhileOthersIdle) {
  workload::YahooTraceParams p;
  p.burst_degree = 3.2;
  p.burst_duration = Duration::minutes(10);
  const TimeSeries hot = workload::generate_yahoo_trace(p);
  const TimeSeries idle = flat(0.4, hot.end_time());
  ZonalController ctl(small_config(4), {{1, &hot}, {3, &idle}});
  const ZonalRunResult r = ctl.run();
  EXPECT_FALSE(r.tripped);
  EXPECT_GT(r.performance_factor[0], 1.4);         // the hot zone sprinted
  EXPECT_NEAR(r.performance_factor[1], 1.0, 1e-9); // idle zone untouched
}

TEST(Zonal, NeverTripsUnderSkewedOverload) {
  // Every zone bursting at once, at different magnitudes, with zero
  // available headroom: the Section V-B rule must keep the substation safe.
  DataCenterConfig config = small_config(4);
  config.dc_headroom = 0.0;
  workload::YahooTraceParams p1, p2;
  p1.burst_degree = 3.6;
  p1.burst_duration = Duration::minutes(15);
  p2.burst_degree = 2.0;
  p2.burst_duration = Duration::minutes(15);
  p2.seed = 0x1234;
  const TimeSeries heavy = workload::generate_yahoo_trace(p1);
  const TimeSeries light = workload::generate_yahoo_trace(p2);
  ZonalController ctl(config, {{2, &heavy}, {2, &light}});
  const ZonalRunResult r = ctl.run();
  EXPECT_FALSE(r.tripped);
  EXPECT_GT(r.performance_factor[0], 1.0);
  EXPECT_GT(r.performance_factor[1], 1.0);
}

TEST(Zonal, SingleZoneMatchesUniformControllerClosely) {
  // One zone spanning the whole fleet is the uniform problem; the zonal
  // controller (which lacks the exhaustion-termination heuristics) should
  // land in the same neighbourhood as the uniform Greedy run.
  workload::YahooTraceParams p;
  p.burst_degree = 2.6;
  p.burst_duration = Duration::minutes(5);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  const DataCenterConfig config = small_config(4);

  ZonalController ctl(config, {{4, &trace}});
  const ZonalRunResult zonal = ctl.run();

  DataCenter dc(config);
  GreedyStrategy greedy;
  const RunResult uniform = dc.run(trace, &greedy);

  EXPECT_NEAR(zonal.total_performance_factor, uniform.performance_factor, 0.06);
}

TEST(Zonal, ConcentratedBurstBeatsUniformSpread) {
  // The same aggregate excess demand is easier to serve when concentrated
  // in one zone (its neighbours' unused substation budget flows to it) —
  // the scenario the paper motivates with bursts hosted "by only a few
  // servers".
  const DataCenterConfig config = small_config(4);

  // Concentrated: one zone at 4.0x for 10 min, three idle at 0.4.
  workload::YahooTraceParams hot_p;
  hot_p.burst_degree = 4.0;
  hot_p.burst_duration = Duration::minutes(10);
  const TimeSeries hot = workload::generate_yahoo_trace(hot_p);
  const TimeSeries idle = flat(0.4, hot.end_time());
  ZonalController concentrated(config, {{1, &hot}, {3, &idle}});
  const ZonalRunResult conc = concentrated.run();

  EXPECT_FALSE(conc.tripped);
  // The hot zone gets deep sprinting: degree well above what a uniform
  // 4x-everywhere burst could sustain for 10 minutes.
  EXPECT_GT(conc.performance_factor[0], 1.8);
}

// Parameterized safety sweep: any split of the fleet into two zones, any
// pair of burst magnitudes, any headroom — never trips, never starves a
// zone below its own demand-or-capacity baseline.
using ZonalParams = std::tuple<std::size_t /*zone A pdus of 4*/,
                               double /*degree A*/, double /*degree B*/,
                               double /*headroom*/>;

class ZonalSafety : public ::testing::TestWithParam<ZonalParams> {};

TEST_P(ZonalSafety, NeverTripsNeverStarves) {
  const auto [a_pdus, deg_a, deg_b, headroom] = GetParam();
  DataCenterConfig config = small_config(4);
  config.dc_headroom = headroom;
  workload::YahooTraceParams pa, pb;
  pa.burst_degree = deg_a;
  pa.burst_duration = Duration::minutes(10);
  pb.burst_degree = deg_b;
  pb.burst_duration = Duration::minutes(10);
  pb.seed = 0xBEEF;
  const TimeSeries ta = workload::generate_yahoo_trace(pa);
  const TimeSeries tb = workload::generate_yahoo_trace(pb);
  ZonalController ctl(config, {{a_pdus, &ta}, {4 - a_pdus, &tb}});
  const ZonalRunResult r = ctl.run();
  EXPECT_FALSE(r.tripped);
  // Every zone performs at least as well as not sprinting at all.
  EXPECT_GE(r.performance_factor[0], 1.0 - 1e-9);
  EXPECT_GE(r.performance_factor[1], 1.0 - 1e-9);
  EXPECT_GE(r.total_performance_factor, 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZonalSafety,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{3}),
                       ::testing::Values(1.5, 3.0, 4.0),
                       ::testing::Values(1.2, 2.6),
                       ::testing::Values(0.0, 0.10)));

TEST(Zonal, StepExposesPerZoneState) {
  workload::YahooTraceParams p;
  p.burst_degree = 3.0;
  p.burst_duration = Duration::minutes(10);
  const TimeSeries hot = workload::generate_yahoo_trace(p);
  const TimeSeries idle = flat(0.4, hot.end_time());
  ZonalController ctl(small_config(4), {{2, &hot}, {2, &idle}});
  // Walk into the burst.
  ZonalStepResult last{};
  for (int i = 0; i < 6 * 60 + 30; ++i) {
    last = ctl.step(Duration::seconds(i), Duration::seconds(1));
  }
  ASSERT_EQ(last.zones.size(), 2u);
  EXPECT_GT(last.zones[0].degree, 1.0);
  EXPECT_DOUBLE_EQ(last.zones[1].degree, 1.0);
  EXPECT_GT(last.zones[0].grid_power, last.zones[1].grid_power);
  EXPECT_GT(last.dc_load, Power::zero());
}

TEST(Zonal, RecorderCapturesPerZoneChannels) {
  workload::YahooTraceParams p;
  p.burst_degree = 3.0;
  p.burst_duration = Duration::minutes(10);
  const TimeSeries hot = workload::generate_yahoo_trace(p);
  const TimeSeries idle = flat(0.4, hot.end_time());
  ZonalController ctl(small_config(4), {{2, &hot}, {2, &idle}});
  sim::Recorder recorder;
  ctl.set_recorder(&recorder);
  (void)ctl.run();

  // Every channel with_zonal_channels names for a 2-zone run must be
  // populated (one sample per control period), plus the facility totals.
  const std::vector<std::string> channels =
      obs::with_zonal_channels({"dc_load_mw", "cooling_mw"}, 2);
  const std::size_t ticks = static_cast<std::size_t>(
      hot.end_time().sec() / DataCenterConfig{}.control_period.sec());
  for (const std::string& channel : channels) {
    ASSERT_TRUE(recorder.has(channel)) << channel;
    EXPECT_EQ(recorder.series(channel).size(), ticks) << channel;
  }

  // The hot zone sprinted, the idle zone never did, and both margins stay
  // positive (no breaker ever gets within tripping distance).
  const TimeSeries& hot_degree = recorder.series("zone0/degree");
  const TimeSeries& idle_degree = recorder.series("zone1/degree");
  double hot_max = 0.0, idle_max = 0.0;
  for (std::size_t i = 0; i < hot_degree.size(); ++i) {
    hot_max = std::max(hot_max, hot_degree[i].value);
    idle_max = std::max(idle_max, idle_degree[i].value);
  }
  EXPECT_GT(hot_max, 1.0);
  EXPECT_DOUBLE_EQ(idle_max, 1.0);
  for (std::size_t z = 0; z < 2; ++z) {
    const TimeSeries& margin =
        recorder.series("zone" + std::to_string(z) + "/cb_trip_margin_s");
    for (std::size_t i = 0; i < margin.size(); ++i) {
      EXPECT_GT(margin[i].value, 0.0);
      EXPECT_LE(margin[i].value, 3600.0);
    }
  }

  // The recorded channels export as counter tracks without loss.
  obs::Tracer tracer;
  obs::export_counters(recorder, tracer, {.channels = channels});
  EXPECT_GE(tracer.events().size(), channels.size() * ticks);
}

TEST(Zonal, WithZonalChannelsNamesZonePrefixedTracks) {
  const std::vector<std::string> channels =
      obs::with_zonal_channels({"dc_load_mw"}, 3);
  EXPECT_EQ(channels.size(), 1 + 3 * obs::kZonalChannelSuffixes.size());
  EXPECT_EQ(channels.front(), "dc_load_mw");
  EXPECT_EQ(channels[1], "zone0/demand");
  EXPECT_EQ(channels.back(), "zone2/cb_trip_margin_s");
  // Zero zones is the identity.
  EXPECT_EQ(obs::with_zonal_channels({"x"}, 0),
            std::vector<std::string>{"x"});
}

}  // namespace
}  // namespace dcs::core
