#include "testbed/testbed.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace dcs::testbed {
namespace {

/// The paper drives the testbed with the Yahoo trace at burst degree 1
/// (the trace itself is the CPU utilization); reference_utilization() is the
/// library's synthetic stand-in.
TimeSeries utilization_trace() { return reference_utilization(); }

TEST(Testbed, CbOnlyTripsQuickly) {
  // Paper Section VII-D: "Without the UPS, the CB will trip in 65 seconds."
  // Our synthetic utilization reproduces the same order: about a minute.
  Testbed tb(TestbedParams{});
  const TestbedOutcome r = tb.run(utilization_trace(), Policy::kCbOnly);
  EXPECT_TRUE(r.cb_tripped);
  EXPECT_GT(r.sustained.sec(), 20.0);
  EXPECT_LT(r.sustained.sec(), 120.0);
  EXPECT_DOUBLE_EQ(r.ups_energy_used.j(), 0.0);
}

TEST(Testbed, UpsExtendsSustainedTime) {
  Testbed tb(TestbedParams{});
  const TimeSeries util = utilization_trace();
  const TestbedOutcome cb_only = tb.run(util, Policy::kCbOnly);
  const TestbedOutcome ours =
      tb.run(util, Policy::kReservedTripTime, Duration::seconds(30));
  // Paper: the CB-only time is only a small fraction (~26 %) of the
  // coordinated sustained time.
  EXPECT_GT(ours.sustained.sec(), cb_only.sustained.sec() * 3.0);
}

TEST(Testbed, OursBeatsCbFirst) {
  // Paper Fig. 11b: the reserved-trip-time policy outlasts CB-First.
  Testbed tb(TestbedParams{});
  const TimeSeries util = utilization_trace();
  const TestbedOutcome cb_first = tb.run(util, Policy::kCbFirst);
  Duration best = Duration::zero();
  for (double reserve : {10.0, 30.0, 60.0, 90.0}) {
    const TestbedOutcome ours =
        tb.run(util, Policy::kReservedTripTime, Duration::seconds(reserve));
    best = std::max(best, ours.sustained);
  }
  EXPECT_GT(best.sec(), cb_first.sustained.sec());
}

TEST(Testbed, IntermediateReserveIsBest) {
  // Paper: the 30 s reserve outlasts both the 10 s and 90 s settings,
  // because moderate reserves avoid deep overloads (whose trip-time cost is
  // quadratic) without wasting UPS energy on shallow ones.
  Testbed tb(TestbedParams{});
  const TimeSeries util = utilization_trace();
  const double t10 =
      tb.run(util, Policy::kReservedTripTime, Duration::seconds(10)).sustained.sec();
  const double t30 =
      tb.run(util, Policy::kReservedTripTime, Duration::seconds(30)).sustained.sec();
  const double t90 =
      tb.run(util, Policy::kReservedTripTime, Duration::seconds(90)).sustained.sec();
  EXPECT_GE(t30, t10);
  EXPECT_GE(t30, t90);
}

TEST(Testbed, PowerCurvesAccountForSplit) {
  Testbed tb(TestbedParams{});
  const TestbedOutcome r = tb.run(utilization_trace(), Policy::kReservedTripTime,
                                  Duration::seconds(30));
  ASSERT_FALSE(r.total_power_w.empty());
  for (std::size_t i = 0; i < r.total_power_w.size(); ++i) {
    // CB share + UPS share = server power at every second.
    ASSERT_NEAR(r.cb_power_w[i].value + r.ups_power_w[i].value,
                r.total_power_w[i].value, 1e-6);
    // Server power stays inside the published envelope.
    ASSERT_GE(r.total_power_w[i].value, 273.0 - 1e-6);
    ASSERT_LE(r.total_power_w[i].value, 428.0 + 1e-6);
  }
}

TEST(Testbed, UpsShareIsHalfWhenClosed) {
  Testbed tb(TestbedParams{});
  const TestbedOutcome r = tb.run(utilization_trace(), Policy::kReservedTripTime,
                                  Duration::seconds(90));
  std::size_t exact_splits = 0;
  for (std::size_t i = 0; i < r.ups_power_w.size(); ++i) {
    if (r.ups_power_w[i].value > 0.0) {
      // Never more than the configured share; the final depleted tick may
      // deliver less (energy-limited average power).
      ASSERT_LE(r.ups_power_w[i].value, r.total_power_w[i].value * 0.5 + 1e-6);
      if (std::abs(r.ups_power_w[i].value - r.total_power_w[i].value * 0.5) <
          1e-6) {
        ++exact_splits;
      }
    }
  }
  EXPECT_GT(exact_splits, 10u);
}

TEST(Testbed, IdlePowerAboveBreakerMeansAlwaysOverloadedAlone) {
  // 273 W idle > 232 W rating: the experiment sprints from second one.
  const TestbedParams p;
  EXPECT_GT(p.idle, p.cb_rated);
  Testbed tb(p);
  const TestbedOutcome r = tb.run(utilization_trace(), Policy::kCbOnly);
  EXPECT_GT(r.cb_overload_time.sec(), 0.0);
}

TEST(Testbed, BiggerUpsLastsLonger) {
  TestbedParams small;
  small.ups_capacity = Energy::watt_hours(5.0);
  TestbedParams large;
  large.ups_capacity = Energy::watt_hours(20.0);
  const TimeSeries util = utilization_trace();
  const TestbedOutcome rs =
      Testbed(small).run(util, Policy::kReservedTripTime, Duration::seconds(30));
  const TestbedOutcome rl =
      Testbed(large).run(util, Policy::kReservedTripTime, Duration::seconds(30));
  EXPECT_GT(rl.sustained, rs.sustained);
}

TEST(Testbed, SurvivesWholeTraceWithHugeUps) {
  TestbedParams p;
  p.ups_capacity = Energy::kilowatt_hours(10.0);
  Testbed tb(p);
  const TimeSeries util = utilization_trace();
  const TestbedOutcome r =
      tb.run(util, Policy::kReservedTripTime, Duration::seconds(30));
  EXPECT_FALSE(r.cb_tripped);
  EXPECT_DOUBLE_EQ(r.sustained.sec(), util.end_time().sec());
}

TEST(Testbed, Validation) {
  TestbedParams p;
  p.peak = Power::watts(100);  // below idle
  EXPECT_THROW((void)Testbed{p}, std::invalid_argument);
  p = {};
  p.ups_share = 1.0;
  EXPECT_THROW((void)Testbed{p}, std::invalid_argument);
  Testbed tb(TestbedParams{});
  EXPECT_THROW((void)tb.run(TimeSeries{}, Policy::kCbOnly), std::invalid_argument);
  EXPECT_THROW((void)tb.run(utilization_trace(), Policy::kReservedTripTime,
                      Duration::zero()),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcs::testbed
