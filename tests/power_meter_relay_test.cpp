#include <gtest/gtest.h>

#include <stdexcept>

#include "power/meter.h"
#include "power/relay.h"

namespace dcs::power {
namespace {

TEST(PowerMeter, TracksStatistics) {
  PowerMeter m("m");
  m.sample(Duration::seconds(0), Power::watts(100));
  m.sample(Duration::seconds(1), Power::watts(300));
  m.sample(Duration::seconds(2), Power::watts(200));
  EXPECT_DOUBLE_EQ(m.mean().w(), 200.0);
  EXPECT_DOUBLE_EQ(m.peak().w(), 300.0);
  EXPECT_DOUBLE_EQ(m.minimum().w(), 100.0);
  EXPECT_EQ(m.count(), 3u);
}

TEST(PowerMeter, EnergyIntegralStepSemantics) {
  PowerMeter m("m");
  m.sample(Duration::seconds(0), Power::watts(100));
  m.sample(Duration::seconds(10), Power::watts(50));
  m.sample(Duration::seconds(20), Power::watts(0));
  EXPECT_DOUBLE_EQ(m.energy().j(), 100.0 * 10 + 50.0 * 10);
}

TEST(PowerMeter, EnergyOfShortSeriesIsZero) {
  PowerMeter m("m");
  m.sample(Duration::zero(), Power::watts(100));
  EXPECT_DOUBLE_EQ(m.energy().j(), 0.0);
}

TEST(PowerMeter, SeriesRetentionOptional) {
  PowerMeter m("m", /*keep_series=*/false);
  m.sample(Duration::zero(), Power::watts(1));
  EXPECT_THROW((void)m.series(), std::invalid_argument);
  EXPECT_THROW((void)m.energy(), std::invalid_argument);
  EXPECT_DOUBLE_EQ(m.mean().w(), 1.0);  // stats still work
}

TEST(Relay, StartsOpenByDefault) {
  const Relay r;
  EXPECT_FALSE(r.closed());
  EXPECT_FALSE(r.switching());
}

TEST(Relay, SwitchesAfterDelay) {
  Relay r(Duration::seconds(0.010));
  r.command(true);
  EXPECT_TRUE(r.switching());
  EXPECT_FALSE(r.closed());
  r.tick(Duration::seconds(0.005));
  EXPECT_FALSE(r.closed());  // still inside the delay
  r.tick(Duration::seconds(0.005));
  EXPECT_TRUE(r.closed());
  EXPECT_FALSE(r.switching());
}

TEST(Relay, RedundantCommandIsNoOp) {
  Relay r(Duration::seconds(0.010), /*initially_closed=*/true);
  r.command(true);
  EXPECT_FALSE(r.switching());
}

TEST(Relay, RetargetDuringSwitch) {
  Relay r(Duration::seconds(0.010));
  r.command(true);
  r.tick(Duration::seconds(0.005));
  r.command(false);  // change of mind restarts the delay
  r.tick(Duration::seconds(0.010));
  EXPECT_FALSE(r.closed());
  EXPECT_FALSE(r.switching());
}

TEST(Relay, LargeTickSettlesImmediately) {
  Relay r(Duration::seconds(0.010));
  r.command(true);
  r.tick(Duration::seconds(1));
  EXPECT_TRUE(r.closed());
}

}  // namespace
}  // namespace dcs::power
