#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace dcs::obs {
namespace {

TEST(ObsTrace, InstantEventsCarrySimTimeAndLane) {
  Tracer tracer;
  tracer.set_lane(3);
  tracer.instant(Duration::seconds(2), "controller", "phase",
                 {arg("from", std::string_view("normal")),
                  arg("to", std::string_view("cb-overload"))});
  ASSERT_EQ(tracer.events().size(), 1u);
  const TraceEvent& e = tracer.events().front();
  EXPECT_EQ(e.domain, Domain::kSim);
  EXPECT_EQ(e.phase, 'i');
  EXPECT_DOUBLE_EQ(e.ts_us, 2e6);
  EXPECT_EQ(e.lane, 3u);
  EXPECT_EQ(e.cat, "controller");
  EXPECT_EQ(e.name, "phase");
  ASSERT_EQ(e.args.size(), 2u);
  EXPECT_EQ(e.args[0].key, "from");
  EXPECT_EQ(e.args[0].value, "\"normal\"");
}

TEST(ObsTrace, ArgRendersNumbersRoundTrippable) {
  EXPECT_EQ(arg("x", 1.5).value, "1.5");
  EXPECT_EQ(arg("b", true).value, "true");
  // Non-finite doubles have no JSON literal; they render as strings.
  EXPECT_EQ(arg("inf", std::string_view("inf")).value, "\"inf\"");
}

TEST(ObsTrace, ChromeTraceIsWellFormedJsonWithMetadata) {
  Tracer tracer;
  tracer.name_lane(Domain::kSim, 0, "greedy/nominal");
  tracer.instant(Duration::seconds(1), "fault", "inject",
                 {arg("magnitude", 0.4)});
  TraceEvent span;
  span.domain = Domain::kWall;
  span.phase = 'X';
  span.ts_us = 10.0;
  span.dur_us = 5.0;
  span.lane = 1;
  span.cat = "profile";
  span.name = "exp.task";
  tracer.append(span);

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 5"), std::string::npos);
  EXPECT_NE(json.find("greedy/nominal"), std::string::npos);
  // Process metadata for both domains.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"sim\""), std::string::npos);
  EXPECT_NE(json.find("\"wall\""), std::string::npos);
}

TEST(ObsTrace, JsonlWritesOneObjectPerEventInAppendOrder) {
  Tracer tracer;
  tracer.instant(Duration::seconds(1), "a", "first");
  tracer.instant(Duration::seconds(2), "a", "second");
  std::ostringstream out;
  tracer.write_jsonl(out);
  const std::string text = out.str();
  std::istringstream lines(text);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++count;
  }
  EXPECT_EQ(count, 2);
  EXPECT_LT(text.find("first"), text.find("second"));
}

TEST(ObsTrace, MergeFromAppendsInOrderAndTransfersLaneNames) {
  Tracer a;
  a.instant(Duration::seconds(1), "x", "one");
  Tracer b;
  b.set_lane(7);
  b.name_lane(Domain::kSim, 7, "task-7");
  b.instant(Duration::seconds(2), "x", "two");

  a.merge_from(std::move(b));
  ASSERT_EQ(a.events().size(), 2u);
  EXPECT_EQ(a.events()[0].name, "one");
  EXPECT_EQ(a.events()[1].name, "two");
  EXPECT_EQ(a.events()[1].lane, 7u);

  std::ostringstream out;
  a.write_chrome_trace(out);
  EXPECT_NE(out.str().find("task-7"), std::string::npos);
}

TEST(ObsTrace, MergeClearsTheSourceSoDoubleMergeDoesNotDuplicate) {
  Tracer a;
  Tracer b;
  b.instant(Duration::seconds(1), "x", "only-once");
  a.merge_from(std::move(b));
  ASSERT_EQ(a.events().size(), 1u);
  // The moved-from tracer is contractually empty; merging it again must be
  // a no-op, not a silent duplication of the stream.
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): contract
  a.merge_from(std::move(b));
  EXPECT_EQ(a.events().size(), 1u);
  EXPECT_EQ(a.count(Domain::kSim), 1u);
}

TEST(ObsTrace, SelfMergeIsAPreconditionViolation) {
  Tracer a;
  a.instant(Duration::seconds(1), "x", "e");
  EXPECT_THROW(a.merge_from(std::move(a)), std::invalid_argument);
  // The tracer is untouched by the rejected merge.
  EXPECT_EQ(a.events().size(), 1u);  // NOLINT(bugprone-use-after-move)
}

TEST(ObsTrace, CountByDomainAndClear) {
  Tracer tracer;
  tracer.instant(Duration::seconds(1), "x", "sim-event");
  TraceEvent wall;
  wall.domain = Domain::kWall;
  wall.phase = 'X';
  tracer.append(wall);
  EXPECT_EQ(tracer.count(Domain::kSim), 1u);
  EXPECT_EQ(tracer.count(Domain::kWall), 1u);
  tracer.clear();
  EXPECT_TRUE(tracer.empty());
}

TEST(ObsTrace, StringArgsEscapeControlAndQuoteCharacters) {
  const TraceArg a = arg("msg", std::string_view("a\"b\\c\nd"));
  EXPECT_EQ(a.value, "\"a\\\"b\\\\c\\nd\"");
}

}  // namespace
}  // namespace dcs::obs
