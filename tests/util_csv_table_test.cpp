#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/table.h"

namespace dcs {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesCommasAndNewlines) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"time", "value"});
  w.write_row({"1", "a,b"});
  EXPECT_EQ(out.str(), "time,value\n1,\"a,b\"\n");
}

TEST(CsvWriter, NumericRowFormatting) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_numeric_row({1.0, 2.5, 1e-3});
  EXPECT_EQ(out.str(), "1,2.5,0.001\n");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(TablePrinter, RejectsEmptyHeadersAndRaggedRows) {
  EXPECT_THROW((void)TablePrinter({}), std::invalid_argument);
  TablePrinter t({"a", "b"});
  EXPECT_THROW((void)t.add_row({"only one"}), std::invalid_argument);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  // Header, separator, two rows.
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("------"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Every line has the same column start for "v" / values.
  const auto header_pos = s.find("v");
  ASSERT_NE(header_pos, std::string::npos);
}

TEST(TablePrinter, NumericAndMixedRows) {
  TablePrinter t({"k", "x", "y"});
  t.add_row("row", {1.5, 2.25}, 2);
  t.add_numeric_row({3.0, 4.0, 5.0}, 1);
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("1.50"), std::string::npos);
  EXPECT_NE(out.str().find("4.0"), std::string::npos);
}

}  // namespace
}  // namespace dcs
