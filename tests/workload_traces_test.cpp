#include <gtest/gtest.h>

#include "workload/burst.h"
#include "workload/ms_trace.h"
#include "workload/yahoo_trace.h"

namespace dcs::workload {
namespace {

TEST(MsTrace, Deterministic) {
  const TimeSeries a = generate_ms_trace();
  const TimeSeries b = generate_ms_trace();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].value, b[i].value);
  }
}

TEST(MsTrace, ThirtyMinutesAtOneSecond) {
  const TimeSeries t = generate_ms_trace();
  EXPECT_DOUBLE_EQ(t.start_time().sec(), 0.0);
  EXPECT_DOUBLE_EQ(t.end_time().min(), 30.0);
  EXPECT_EQ(t.size(), 1801u);
}

TEST(MsTrace, MatchesPaperEnvelope) {
  // Section VI-C / VII-B: peak above 3x capacity, aggregated over-capacity
  // ("real burst") duration of ~16.2 minutes, consecutive bursts.
  const BurstStats s = analyze_bursts(generate_ms_trace());
  EXPECT_GT(s.peak_demand, 2.9);
  EXPECT_LT(s.peak_demand, 3.6);
  EXPECT_NEAR(s.over_capacity_time.min(), 16.2, 2.0);
  EXPECT_GE(s.burst_count, 3u);
  EXPECT_LE(s.burst_count, 6u);
}

TEST(MsTrace, BaselineBelowCapacity) {
  const TimeSeries t = generate_ms_trace();
  // The last ~5 minutes are burst-free recovery time.
  const TimeSeries tail = t.slice(Duration::minutes(25), Duration::minutes(30));
  EXPECT_LT(tail.max_value(), 1.0);
  EXPECT_GT(t.min_value(), 0.0);
}

TEST(MsTrace, SeedChangesNoise) {
  MsTraceParams p;
  p.seed = 999;
  const TimeSeries a = generate_ms_trace(p);
  const TimeSeries b = generate_ms_trace();
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].value != b[i].value;
  }
  EXPECT_TRUE(differs);
}

TEST(MsTrace, Validation) {
  MsTraceParams p;
  p.baseline = 1.5;
  EXPECT_THROW((void)generate_ms_trace(p), std::invalid_argument);
  p = {};
  p.noise = 0.5;
  EXPECT_THROW((void)generate_ms_trace(p), std::invalid_argument);
}

TEST(MsDayTrace, CoversDayWithBursts) {
  MsDayTraceParams p;
  p.length = Duration::hours(6);  // keep the test quick
  const TimeSeries t = generate_ms_day_trace(p);
  EXPECT_DOUBLE_EQ(t.end_time().hrs(), 6.0);
  EXPECT_GT(t.max_value(), 5.0);       // bursts well above baseline
  EXPECT_LT(t.max_value(), 10.0);      // clamped near the 9.5 GB/s peak
  EXPECT_GT(t.min_value(), 0.0);
}

TEST(YahooTrace, Deterministic) {
  const TimeSeries a = generate_yahoo_trace();
  const TimeSeries b = generate_yahoo_trace();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].value, b[i].value);
  }
}

TEST(YahooTrace, DefaultBurstShape) {
  // Fig. 7b: burst degree 3.2 from minute 5 for 15 minutes.
  const TimeSeries t = generate_yahoo_trace();
  EXPECT_LT(t.at(Duration::minutes(4)), 1.0);
  EXPECT_NEAR(t.at(Duration::minutes(10)), 3.2, 1e-9);
  EXPECT_NEAR(t.at(Duration::minutes(19.9)), 3.2, 1e-9);
  EXPECT_LT(t.at(Duration::minutes(21)), 1.0);
}

TEST(YahooTrace, BurstParameterization) {
  for (double degree : {2.6, 3.0, 3.6}) {
    for (double minutes : {1.0, 5.0, 15.0}) {
      YahooTraceParams p;
      p.burst_degree = degree;
      p.burst_duration = Duration::minutes(minutes);
      const BurstStats s = analyze_bursts(generate_yahoo_trace(p));
      EXPECT_NEAR(s.peak_demand, degree, 1e-9);
      EXPECT_NEAR(s.over_capacity_time.min(), minutes, 0.1);
      EXPECT_EQ(s.burst_count, 1u);
    }
  }
}

TEST(YahooTrace, SmoothBaseline) {
  // "The request rate of the aggregated Yahoo! trace does not change so
  // severely": the pre-burst baseline stays well below capacity.
  const TimeSeries t = generate_yahoo_trace();
  const TimeSeries head = t.slice(Duration::zero(), Duration::minutes(4.9));
  EXPECT_LT(head.max_value(), 0.5);
  EXPECT_GT(head.min_value(), 0.05);
}

TEST(YahooTrace, Validation) {
  YahooTraceParams p;
  p.burst_degree = 0.5;
  EXPECT_THROW((void)generate_yahoo_trace(p), std::invalid_argument);
  p = {};
  p.burst_start = Duration::minutes(25);
  p.burst_duration = Duration::minutes(10);
  EXPECT_THROW((void)generate_yahoo_trace(p), std::invalid_argument);
  p = {};
  p.base_level = 0.99;
  EXPECT_THROW((void)generate_yahoo_trace(p), std::invalid_argument);
}

}  // namespace
}  // namespace dcs::workload
