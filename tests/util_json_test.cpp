#include "util/json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace dcs::json {
namespace {

TEST(UtilJson, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(parse("-1e3").as_number(), -1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(UtilJson, ParsesNestedStructures) {
  const Value v = parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": true}})");
  ASSERT_TRUE(v.is_object());
  const Value& a = v.at("a");
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_EQ(a[2].at("b").as_string(), "c");
  EXPECT_TRUE(v.at("d").at("e").as_bool());
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("missing"));
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(UtilJson, ParsesStringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\tz")").as_string(), "a\"b\\c\nd\tz");
  EXPECT_EQ(parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(UtilJson, RoundTripsPerfRecordNumbers) {
  // %.17g-rendered doubles (the trace/perf writers' format) survive a parse.
  const Value v = parse(R"({"mean_us": 16.699999999999999})");
  EXPECT_DOUBLE_EQ(v.at("mean_us").as_number(), 16.699999999999999);
}

TEST(UtilJson, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), std::invalid_argument);
  EXPECT_THROW(parse("{"), std::invalid_argument);
  EXPECT_THROW(parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(parse("tru"), std::invalid_argument);
  EXPECT_THROW(parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(parse("{} extra"), std::invalid_argument);
  EXPECT_THROW(parse("{\"a\": }"), std::invalid_argument);
}

TEST(UtilJson, TypeMismatchesThrow) {
  const Value v = parse("{\"a\": 1}");
  EXPECT_THROW(v.as_array(), std::invalid_argument);
  EXPECT_THROW(v.at("a").as_string(), std::invalid_argument);
  EXPECT_THROW(v.at("missing"), std::invalid_argument);
}

TEST(UtilJson, ParseFileReadsAndRejectsMissing) {
  const std::string path = ::testing::TempDir() + "util_json_test.json";
  {
    std::ofstream out(path);
    out << "{\"x\": [1, 2]}";
  }
  const Value v = parse_file(path);
  EXPECT_EQ(v.at("x").size(), 2u);
  std::remove(path.c_str());
  EXPECT_THROW(parse_file(path), std::invalid_argument);
}

}  // namespace
}  // namespace dcs::json
