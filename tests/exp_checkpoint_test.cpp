#include "exp/checkpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/reporter.h"
#include "exp/runner.h"
#include "exp/sweep.h"

namespace dcs::exp {
namespace {

SweepSpec small_spec() {
  SweepSpec spec("ckpt_unit", /*base_seed=*/0xC4EC4EULL);
  spec.add_axis("strategy", {"a", "b"});
  spec.add_axis("severity", std::vector<double>{0.5, 1.0, 1.5}, 1);
  spec.set_replicates(2);
  return spec;
}

/// Deterministic task function keyed on the task seed, with a call counter
/// so tests can assert how many slots actually executed.
std::vector<double> seed_row(const SweepSpec::Task& task) {
  const double x = static_cast<double>(task.seed % 1000) / 7.0;
  return {static_cast<double>(task.index), x};
}

std::string unique_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string rows_csv(const SweepSpec& spec, const SweepRun& run) {
  std::ostringstream out;
  write_rows_csv(out, spec, run);
  return out.str();
}

TEST(ExpCheckpoint, ShardRangePartitionsTasks) {
  for (const std::size_t n : {0u, 1u, 5u, 12u, 13u}) {
    for (const std::size_t k : {1u, 2u, 3u, 4u, 7u}) {
      std::size_t covered = 0;
      std::size_t prev_last = 0;
      std::size_t min_size = n;
      std::size_t max_size = 0;
      for (std::size_t i = 0; i < k; ++i) {
        const auto [first, last] = shard_range(n, {i, k});
        EXPECT_EQ(first, prev_last) << "shards must tile contiguously";
        EXPECT_LE(first, last);
        prev_last = last;
        covered += last - first;
        min_size = std::min(min_size, last - first);
        max_size = std::max(max_size, last - first);
      }
      EXPECT_EQ(prev_last, n);
      EXPECT_EQ(covered, n);
      EXPECT_LE(max_size - min_size, 1u) << "shard sizes must differ by <= 1";
    }
  }
  EXPECT_THROW((void)shard_range(10, {0, 0}), std::invalid_argument);
  EXPECT_THROW((void)shard_range(10, {3, 3}), std::invalid_argument);
}

TEST(ExpCheckpoint, RoundTripsRowsIncludingNonFinite) {
  SweepSpec spec("ckpt_nonfinite", 9);
  spec.add_axis("x", std::vector<double>{1.0, 2.0}, 0);
  const std::vector<std::string> metrics = {"a", "b", "c"};
  const std::string path = unique_path("ckpt_nonfinite.jsonl");
  std::remove(path.c_str());

  const std::vector<SweepSpec::Task> tasks = spec.tasks();
  const std::vector<double> row0 = {0.1 + 0.2,  // not exactly 0.3
                                    std::numeric_limits<double>::infinity(),
                                    std::numeric_limits<double>::quiet_NaN()};
  const std::vector<double> row1 = {
      -std::numeric_limits<double>::infinity(), 1e-301, -0.0};
  {
    CheckpointWriter writer(path, spec, metrics);
    ASSERT_TRUE(writer.ok());
    writer.append(0, tasks[0].seed, row0);
    writer.append(1, tasks[1].seed, row1);
  }

  const CheckpointData data = load_checkpoint(path);
  ASSERT_TRUE(data.present);
  EXPECT_TRUE(data.complete());
  EXPECT_EQ(data.sweep, "ckpt_nonfinite");
  EXPECT_EQ(data.base_seed, 9u);
  EXPECT_EQ(data.metrics, metrics);
  ASSERT_EQ(data.rows.size(), 2u);
  for (std::size_t m = 0; m < metrics.size(); ++m) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(data.rows.at(0)[m]),
              std::bit_cast<std::uint64_t>(row0[m]))
        << "row 0 metric " << m << " must round-trip bit-for-bit";
    EXPECT_EQ(std::bit_cast<std::uint64_t>(data.rows.at(1)[m]),
              std::bit_cast<std::uint64_t>(row1[m]))
        << "row 1 metric " << m << " must round-trip bit-for-bit";
  }
  EXPECT_EQ(data.seeds.at(0), tasks[0].seed);
  std::remove(path.c_str());
}

TEST(ExpCheckpoint, MissingFileIsAFreshStart) {
  const CheckpointData data =
      load_checkpoint(unique_path("ckpt_never_written.jsonl"));
  EXPECT_FALSE(data.present);
  EXPECT_FALSE(data.complete());
}

TEST(ExpCheckpoint, EmptyFileIsAFreshStart) {
  // A worker killed between open() and the header flush leaves a zero-byte
  // file; it must read as absent and the next attempt must start clean.
  const std::string path = unique_path("empty.ckpt.jsonl");
  { std::ofstream out(path); }
  const CheckpointData data = load_checkpoint(path);
  EXPECT_FALSE(data.present);
  EXPECT_TRUE(data.rows.empty());

  const SweepSpec spec = small_spec();
  const SweepRun resumed = run_sweep(spec, {"index", "x"}, seed_row,
                                     {.threads = 2, .checkpoint_path = path});
  EXPECT_EQ(resumed.executed_tasks, spec.task_count());
  EXPECT_TRUE(load_checkpoint(path).complete());
  std::remove(path.c_str());
}

TEST(ExpCheckpoint, HeaderOnlyFileIsPresentWithZeroRows) {
  // Killed after the header flush but before any row: the fingerprint
  // survives, the row set is empty, and nothing throws.
  const SweepSpec spec = small_spec();
  const std::string path = unique_path("header_only.ckpt.jsonl");
  {
    CheckpointWriter writer(path, spec, {"index", "x"});
    ASSERT_TRUE(writer.ok());
  }
  const CheckpointData data = load_checkpoint(path);
  EXPECT_TRUE(data.present);
  EXPECT_EQ(data.sweep, spec.name());
  EXPECT_TRUE(data.rows.empty());
  EXPECT_FALSE(data.complete());

  const SweepRun resumed = run_sweep(spec, {"index", "x"}, seed_row,
                                     {.threads = 2, .checkpoint_path = path});
  EXPECT_EQ(resumed.executed_tasks, spec.task_count());
  std::remove(path.c_str());
}

TEST(ExpCheckpoint, AtomicWriteRoundTripsAndNeverLeavesTemp) {
  const SweepSpec spec = small_spec();
  // threads=1 so the incremental writer appends in index order, matching
  // the index-sorted order write_checkpoint_atomic emits.
  const std::string direct = unique_path("atomic_direct.ckpt.jsonl");
  (void)run_sweep(spec, {"index", "x"}, seed_row,
                  {.threads = 1, .checkpoint_path = direct});
  const CheckpointData data = load_checkpoint(direct);

  const std::string atomic = unique_path("atomic_out.ckpt.jsonl");
  ASSERT_TRUE(write_checkpoint_atomic(atomic, data));
  // Identical bytes to the plain writer, and the staging file is gone.
  std::ifstream a(direct), b(atomic);
  std::ostringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_FALSE(std::ifstream(atomic + ".tmp").good());

  // An unwritable destination reports failure instead of throwing.
  EXPECT_FALSE(
      write_checkpoint_atomic(unique_path("no_such_dir/x.ckpt.jsonl"), data));
  std::remove(direct.c_str());
  std::remove(atomic.c_str());
}

TEST(ExpCheckpoint, ResumeExecutesOnlyMissingSlots) {
  const SweepSpec spec = small_spec();
  const std::string path = unique_path("ckpt_resume.jsonl");
  std::remove(path.c_str());

  // First attempt dies after writing a partial checkpoint: simulate by
  // checkpointing only shard 0 of 2 (the first half of the grid).
  std::atomic<std::size_t> calls{0};
  const auto counted = [&](const SweepSpec::Task& task) {
    calls.fetch_add(1);
    return seed_row(task);
  };
  const auto [first, last] = shard_range(spec.task_count(), {0, 2});
  (void)run_sweep(spec, {"index", "x"}, counted,
                  {.threads = 2, .checkpoint_path = path, .shard = {0, 2}});
  EXPECT_EQ(calls.load(), last - first);

  // The resumed full run executes only the slots the checkpoint lacks.
  calls.store(0);
  const SweepRun resumed = run_sweep(spec, {"index", "x"}, counted,
                                     {.threads = 2, .checkpoint_path = path});
  EXPECT_EQ(calls.load(), spec.task_count() - (last - first));
  EXPECT_EQ(resumed.resumed_tasks, last - first);
  EXPECT_EQ(resumed.executed_tasks, spec.task_count() - (last - first));

  // And is byte-identical to an uninterrupted run without any checkpoint.
  const SweepRun clean =
      run_sweep(spec, {"index", "x"}, seed_row, {.threads = 2});
  EXPECT_EQ(rows_csv(spec, resumed), rows_csv(spec, clean));

  // A third run over the now-complete checkpoint executes nothing.
  calls.store(0);
  const SweepRun replay = run_sweep(spec, {"index", "x"}, counted,
                                    {.threads = 2, .checkpoint_path = path});
  EXPECT_EQ(calls.load(), 0u);
  EXPECT_EQ(replay.executed_tasks, 0u);
  EXPECT_EQ(replay.resumed_tasks, spec.task_count());
  EXPECT_EQ(rows_csv(spec, replay), rows_csv(spec, clean));
  std::remove(path.c_str());
}

TEST(ExpCheckpoint, ToleratesTornTrailingLine) {
  const SweepSpec spec = small_spec();
  const std::string path = unique_path("ckpt_torn.jsonl");
  std::remove(path.c_str());

  (void)run_sweep(spec, {"index", "x"}, seed_row,
                  {.threads = 1, .checkpoint_path = path, .shard = {0, 2}});
  {
    // A kill mid-append leaves a truncated final line.
    std::ofstream out(path, std::ios::app);
    out << "{\"index\": 9, \"seed\": \"123\", \"row\": [1.0,";
  }
  const CheckpointData data = load_checkpoint(path);
  ASSERT_TRUE(data.present);
  const auto [first, last] = shard_range(spec.task_count(), {0, 2});
  EXPECT_EQ(data.rows.size(), last - first)
      << "the torn line must be dropped, not parsed";
  EXPECT_EQ(data.rows.count(9), 0u);

  // Resume re-runs the torn slot along with the rest.
  const SweepRun resumed = run_sweep(spec, {"index", "x"}, seed_row,
                                     {.threads = 2, .checkpoint_path = path});
  const SweepRun clean =
      run_sweep(spec, {"index", "x"}, seed_row, {.threads = 2});
  EXPECT_EQ(rows_csv(spec, resumed), rows_csv(spec, clean));
  std::remove(path.c_str());
}

TEST(ExpCheckpoint, ShardedRunsMergeByteIdenticalToUnsharded) {
  const SweepSpec spec = small_spec();
  const SweepRun clean =
      run_sweep(spec, {"index", "x"}, seed_row, {.threads = 2});

  const std::size_t kShards = 3;
  std::vector<CheckpointData> shards;
  for (std::size_t i = 0; i < kShards; ++i) {
    const std::string path =
        unique_path("ckpt_shard" + std::to_string(i) + ".jsonl");
    std::remove(path.c_str());
    const SweepRun shard_run = run_sweep(
        spec, {"index", "x"}, seed_row,
        {.threads = 2, .checkpoint_path = path, .shard = {i, kShards}});
    EXPECT_EQ(shard_run.shard_index, i);
    EXPECT_EQ(shard_run.shard_count, kShards);
    shards.push_back(load_checkpoint(path));
    ASSERT_TRUE(shards.back().present);
    std::remove(path.c_str());
  }

  const CheckpointData merged = merge_checkpoints(shards);
  EXPECT_TRUE(merged.complete());
  const SweepRun merged_run = merge_runs(shards);
  ASSERT_EQ(merged_run.rows.size(), clean.rows.size());
  EXPECT_EQ(rows_csv(spec, merged_run), rows_csv(spec, clean));

  // Replaying the merged checkpoint through run_sweep executes nothing and
  // reproduces the same bytes again — the tools/merge_sweep workflow.
  const std::string merged_path = unique_path("ckpt_merged.jsonl");
  std::remove(merged_path.c_str());
  {
    std::ofstream out(merged_path, std::ios::trunc);
    write_checkpoint(out, merged);
  }
  std::atomic<std::size_t> calls{0};
  const SweepRun replay = run_sweep(
      spec, {"index", "x"},
      [&](const SweepSpec::Task& task) {
        calls.fetch_add(1);
        return seed_row(task);
      },
      {.threads = 2, .checkpoint_path = merged_path});
  EXPECT_EQ(calls.load(), 0u);
  EXPECT_EQ(rows_csv(spec, replay), rows_csv(spec, clean));
  std::remove(merged_path.c_str());
}

TEST(ExpCheckpoint, MergeRejectsDisagreeingShards) {
  EXPECT_THROW((void)merge_checkpoints({}), std::invalid_argument);

  CheckpointData a;
  a.present = true;
  a.sweep = "s";
  a.task_count = 2;
  a.metrics = {"m"};
  a.rows[0] = {1.0};
  a.seeds[0] = 11;
  CheckpointData b = a;
  b.sweep = "other";
  EXPECT_THROW((void)merge_checkpoints({a, b}), std::invalid_argument);

  CheckpointData c = a;
  c.rows[0] = {2.0};  // same index, different bits
  EXPECT_THROW((void)merge_checkpoints({a, c}), std::invalid_argument);

  CheckpointData d = a;
  d.rows[1] = {3.0};
  d.seeds[1] = 12;
  const CheckpointData merged = merge_checkpoints({a, d});
  EXPECT_TRUE(merged.complete());
  EXPECT_DOUBLE_EQ(merged.rows.at(1)[0], 3.0);
}

TEST(ExpCheckpoint, RequireMatchesRejectsStaleCheckpoints) {
  const SweepSpec spec = small_spec();
  const std::vector<std::string> metrics = {"index", "x"};
  const std::string path = unique_path("ckpt_stale.jsonl");
  std::remove(path.c_str());
  (void)run_sweep(spec, metrics, seed_row,
                  {.threads = 1, .checkpoint_path = path});
  const CheckpointData data = load_checkpoint(path);
  ASSERT_TRUE(data.present);
  require_matches(data, spec, metrics);  // the happy path must not throw

  SweepSpec renamed("ckpt_other", spec.base_seed());
  renamed.add_axis("strategy", {"a", "b"});
  renamed.add_axis("severity", std::vector<double>{0.5, 1.0, 1.5}, 1);
  renamed.set_replicates(2);
  EXPECT_THROW(require_matches(data, renamed, metrics), std::invalid_argument);

  SweepSpec reseeded("ckpt_unit", spec.base_seed() + 1);
  reseeded.add_axis("strategy", {"a", "b"});
  reseeded.add_axis("severity", std::vector<double>{0.5, 1.0, 1.5}, 1);
  reseeded.set_replicates(2);
  EXPECT_THROW(require_matches(data, reseeded, metrics),
               std::invalid_argument);

  SweepSpec regridded = small_spec();
  regridded.set_replicates(3);  // different task count
  EXPECT_THROW(require_matches(data, regridded, metrics),
               std::invalid_argument);

  EXPECT_THROW(require_matches(data, spec, {"index", "renamed"}),
               std::invalid_argument);
  std::remove(path.c_str());
}

TEST(ExpCheckpoint, RunSweepRejectsStaleCheckpointFile) {
  const SweepSpec spec = small_spec();
  const std::string path = unique_path("ckpt_mismatch.jsonl");
  std::remove(path.c_str());
  (void)run_sweep(spec, {"index", "x"}, seed_row,
                  {.threads = 1, .checkpoint_path = path});
  EXPECT_THROW((void)run_sweep(spec, {"index", "renamed"}, seed_row,
                               {.threads = 1, .checkpoint_path = path}),
               std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcs::exp
