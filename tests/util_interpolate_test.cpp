#include "util/interpolate.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dcs {
namespace {

TEST(PiecewiseCurve, RequiresTwoOrderedKnots) {
  EXPECT_THROW((void)PiecewiseCurve({{1.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW((void)PiecewiseCurve({{2.0, 1.0}, {1.0, 2.0}}), std::invalid_argument);
  EXPECT_NO_THROW(PiecewiseCurve({{1.0, 1.0}, {2.0, 2.0}}));
}

TEST(PiecewiseCurve, LinearInterpolation) {
  const PiecewiseCurve c({{0.0, 0.0}, {10.0, 100.0}});
  EXPECT_DOUBLE_EQ(c(5.0), 50.0);
  EXPECT_DOUBLE_EQ(c(2.5), 25.0);
}

TEST(PiecewiseCurve, ClampsOutsideRange) {
  const PiecewiseCurve c({{1.0, 10.0}, {2.0, 20.0}});
  EXPECT_DOUBLE_EQ(c(0.0), 10.0);
  EXPECT_DOUBLE_EQ(c(5.0), 20.0);
}

TEST(PiecewiseCurve, MultiSegment) {
  const PiecewiseCurve c({{0.0, 0.0}, {1.0, 10.0}, {3.0, 10.0}, {4.0, 0.0}});
  EXPECT_DOUBLE_EQ(c(0.5), 5.0);
  EXPECT_DOUBLE_EQ(c(2.0), 10.0);
  EXPECT_DOUBLE_EQ(c(3.5), 5.0);
}

TEST(PiecewiseCurve, LogLogStraightLineIsPowerLaw) {
  // y = x^-2 through (1, 1) and (100, 1e-4); log-log interpolation must
  // recover the power law exactly at interior points.
  const PiecewiseCurve c({{1.0, 1.0}, {100.0, 1e-4}},
                         PiecewiseCurve::Scale::kLogLog);
  EXPECT_NEAR(c(10.0), 1e-2, 1e-9);
  EXPECT_NEAR(c(31.622776601683793), 1e-3, 1e-9);
}

TEST(PiecewiseCurve, LogLogRejectsNonPositiveKnots) {
  EXPECT_THROW((void)PiecewiseCurve({{0.0, 1.0}, {1.0, 2.0}},
                              PiecewiseCurve::Scale::kLogLog),
               std::invalid_argument);
  EXPECT_THROW((void)PiecewiseCurve({{1.0, -1.0}, {2.0, 2.0}},
                              PiecewiseCurve::Scale::kLogLog),
               std::invalid_argument);
}

TEST(Clamp, Basics) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(11.0, 0.0, 10.0), 10.0);
  EXPECT_THROW((void)clamp(0.0, 10.0, 0.0), std::invalid_argument);
}

TEST(Lerp, Basics) {
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(lerp(10.0, 0.0, 0.25), 7.5);
  EXPECT_DOUBLE_EQ(lerp(3.0, 3.0, 0.9), 3.0);
}

}  // namespace
}  // namespace dcs
