#include "power/battery.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dcs::power {
namespace {

Battery make_battery() {
  // The paper's per-server UPS: 0.5 Ah on an 11 V bus = 5.5 Wh,
  // ~6 minutes at the 55 W peak-normal server draw.
  return Battery("ups", Battery::Params{});
}

TEST(Battery, PaperSizingSustainsSixMinutes) {
  Battery b = make_battery();
  EXPECT_DOUBLE_EQ(b.capacity().wh(), 5.5);
  int seconds = 0;
  while (b.discharge(Power::watts(55), Duration::seconds(1)) > Power::zero()) {
    ++seconds;
    ASSERT_LT(seconds, 100000);
  }
  EXPECT_NEAR(seconds, 360, 1);
}

TEST(Battery, StartsFull) {
  Battery b = make_battery();
  EXPECT_DOUBLE_EQ(b.soc(), 1.0);
  EXPECT_DOUBLE_EQ(b.available().j(), b.capacity().j());
}

TEST(Battery, DischargeRespectsInverterLimit) {
  Battery b = make_battery();
  const Power supplied = b.discharge(Power::watts(500), Duration::seconds(1));
  EXPECT_DOUBLE_EQ(supplied.w(), 150.0);  // default max_discharge
}

TEST(Battery, PartialTickExhaustionDeliversAverage) {
  Battery::Params p;
  p.capacity = Charge::amp_hours(0.5);
  p.bus_voltage = 11.0;
  Battery b("ups", p);
  // Ask for the whole 19800 J in one 180 s tick at 150 W = 27000 J wanted.
  const Power got = b.discharge(Power::watts(150), Duration::seconds(180));
  EXPECT_NEAR(got.w() * 180.0, 19800.0, 1e-6);
  EXPECT_DOUBLE_EQ(b.available().j(), 0.0);
}

TEST(Battery, EnergyConservation) {
  Battery b = make_battery();
  Energy delivered = Energy::zero();
  for (int i = 0; i < 100; ++i) {
    delivered += b.discharge(Power::watts(40), Duration::seconds(1)) *
                 Duration::seconds(1);
  }
  EXPECT_NEAR((b.capacity() - b.stored()).j(), delivered.j(), 1e-9);
  EXPECT_NEAR(b.total_discharged().j(), delivered.j(), 1e-9);
}

TEST(Battery, SocNeverLeavesUnitInterval) {
  Battery b = make_battery();
  for (int i = 0; i < 1000; ++i) {
    b.discharge(Power::watts(150), Duration::seconds(1));
    EXPECT_GE(b.soc(), 0.0);
    EXPECT_LE(b.soc(), 1.0);
  }
  for (int i = 0; i < 100000; ++i) {
    b.recharge(Power::watts(100), Duration::seconds(1));
    EXPECT_LE(b.soc(), 1.0);
  }
  EXPECT_NEAR(b.soc(), 1.0, 1e-9);
}

TEST(Battery, RechargeDrawsLossesFromGrid) {
  Battery::Params p;
  p.recharge_efficiency = 0.9;
  p.max_recharge = Power::watts(10);
  Battery b("ups", p);
  b.discharge(Power::watts(150), Duration::seconds(60));  // drain 9000 J
  const Energy before = b.stored();
  const Power grid = b.recharge(Power::watts(10), Duration::seconds(1));
  EXPECT_DOUBLE_EQ(grid.w(), 10.0);
  EXPECT_NEAR((b.stored() - before).j(), 9.0, 1e-9);  // 90 % lands in the cell
}

TEST(Battery, RechargeStopsAtFull) {
  Battery b = make_battery();
  EXPECT_DOUBLE_EQ(b.recharge(Power::watts(10), Duration::seconds(1)).w(), 0.0);
}

TEST(Battery, ReserveFloorBlocksDeepDischarge) {
  Battery::Params p;
  p.reserve_floor = 0.2;
  Battery b("ups", p);
  while (b.discharge(Power::watts(150), Duration::seconds(1)) > Power::zero()) {
  }
  EXPECT_NEAR(b.soc(), 0.2, 1e-9);
}

TEST(Battery, DischargeEventCounting) {
  Battery b = make_battery();
  EXPECT_EQ(b.discharge_events(), 0u);
  b.discharge(Power::watts(50), Duration::seconds(10));
  b.discharge(Power::watts(50), Duration::seconds(10));
  EXPECT_EQ(b.discharge_events(), 1u);  // continuous discharge = one event
  b.recharge(Power::watts(1), Duration::seconds(1));
  b.discharge(Power::watts(50), Duration::seconds(10));
  EXPECT_EQ(b.discharge_events(), 2u);
}

TEST(Battery, EquivalentFullCycles) {
  Battery b = make_battery();
  // Drain completely once: one equivalent full cycle.
  while (b.discharge(Power::watts(150), Duration::seconds(1)) > Power::zero()) {
  }
  EXPECT_NEAR(b.equivalent_full_cycles(), 1.0, 1e-9);
}

TEST(Battery, Validation) {
  Battery::Params p;
  p.capacity = Charge::zero();
  EXPECT_THROW((void)Battery("b", p), std::invalid_argument);
  p = {};
  p.bus_voltage = 0.0;
  EXPECT_THROW((void)Battery("b", p), std::invalid_argument);
  p = {};
  p.recharge_efficiency = 1.5;
  EXPECT_THROW((void)Battery("b", p), std::invalid_argument);
  p = {};
  p.reserve_floor = 1.0;
  EXPECT_THROW((void)Battery("b", p), std::invalid_argument);
  Battery b = make_battery();
  EXPECT_THROW((void)b.discharge(Power::watts(-1), Duration::seconds(1)),
               std::invalid_argument);
  EXPECT_THROW((void)b.discharge(Power::watts(1), Duration::zero()),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcs::power
