// Offline trace analysis (obs/query.h): format auto-detection over the
// repo's three trace encodings, scope/counter statistics, threshold-window
// extraction with step-function semantics, and byte-stable CSV output.
#include "obs/query.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/sink.h"
#include "obs/trace.h"

namespace dcs::obs::query {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
}

/// A merged-timeline-style JSONL fixture: two sources, spans, counters on
/// two lanes, and non-event lines that loaders must skip.
std::string timeline_fixture() {
  const std::string path = temp_path("query_timeline.jsonl");
  write_file(
      path,
      "{\"t\":\"timeline\",\"timeline\":1,\"sources\":2}\n"
      "{\"t\":\"proc\",\"src\":\"shard0\",\"pid\":10}\n"
      "{\"t\":\"ev\",\"src\":\"shard0\",\"domain\":\"sim\",\"ph\":\"X\","
      "\"ts\":0,\"dur\":100,\"lane\":0,\"cat\":\"c\",\"name\":\"work\"}\n"
      "{\"t\":\"ev\",\"src\":\"shard0\",\"domain\":\"sim\",\"ph\":\"X\","
      "\"ts\":200,\"dur\":300,\"lane\":0,\"cat\":\"c\",\"name\":\"work\"}\n"
      "{\"t\":\"ev\",\"src\":\"shard1\",\"domain\":\"sim\",\"ph\":\"X\","
      "\"ts\":0,\"dur\":50,\"lane\":0,\"cat\":\"c\",\"name\":\"work\"}\n"
      // Lane 0: degree steps 1 -> 3 -> 3.5 -> 1 -> 2 -> 1.
      "{\"t\":\"ev\",\"src\":\"shard0\",\"domain\":\"sim\",\"ph\":\"C\","
      "\"ts\":0,\"lane\":0,\"name\":\"degree\",\"args\":{\"value\":1}}\n"
      "{\"t\":\"ev\",\"src\":\"shard0\",\"domain\":\"sim\",\"ph\":\"C\","
      "\"ts\":10,\"lane\":0,\"name\":\"degree\",\"args\":{\"value\":3}}\n"
      "{\"t\":\"ev\",\"src\":\"shard0\",\"domain\":\"sim\",\"ph\":\"C\","
      "\"ts\":20,\"lane\":0,\"name\":\"degree\",\"args\":{\"value\":3.5}}\n"
      "{\"t\":\"ev\",\"src\":\"shard0\",\"domain\":\"sim\",\"ph\":\"C\","
      "\"ts\":30,\"lane\":0,\"name\":\"degree\",\"args\":{\"value\":1}}\n"
      "{\"t\":\"ev\",\"src\":\"shard0\",\"domain\":\"sim\",\"ph\":\"C\","
      "\"ts\":40,\"lane\":0,\"name\":\"degree\",\"args\":{\"value\":2}}\n"
      "{\"t\":\"ev\",\"src\":\"shard0\",\"domain\":\"sim\",\"ph\":\"C\","
      "\"ts\":50,\"lane\":0,\"name\":\"degree\",\"args\":{\"value\":1}}\n"
      // Lane 1 interleaves its own independent step function; grouping by
      // (src, lane) must keep it from shredding lane 0's windows.
      "{\"t\":\"ev\",\"src\":\"shard0\",\"domain\":\"sim\",\"ph\":\"C\","
      "\"ts\":15,\"lane\":1,\"name\":\"degree\",\"args\":{\"value\":1}}\n"
      "{\"t\":\"ev\",\"src\":\"shard0\",\"domain\":\"sim\",\"ph\":\"C\","
      "\"ts\":35,\"lane\":1,\"name\":\"degree\",\"args\":{\"value\":1}}\n"
      "{\"t\":\"stack\",\"stack\":\"a;b\",\"count\":3}\n");
  return path;
}

TEST(ObsQuery, LoadsTimelineJsonlSkippingNonEventLines) {
  const std::string path = timeline_fixture();
  const TraceData trace = load_trace(path);
  EXPECT_EQ(trace.events.size(), 11u);
  EXPECT_EQ(trace.events[0].src, "shard0");
  EXPECT_EQ(trace.events[0].ph, 'X');
  EXPECT_EQ(trace.events[0].dur_us, 100.0);
  std::remove(path.c_str());
}

TEST(ObsQuery, ScopeStatsGroupBySourceAndName) {
  const std::string path = timeline_fixture();
  const std::vector<ScopeStat> stats = scope_stats(load_trace(path));
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].src, "shard0");
  EXPECT_EQ(stats[0].name, "work");
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_EQ(stats[0].total_us, 400.0);
  EXPECT_EQ(stats[0].mean_us(), 200.0);
  EXPECT_EQ(stats[0].min_us, 100.0);
  EXPECT_EQ(stats[0].max_us, 300.0);
  EXPECT_EQ(stats[1].src, "shard1");
  EXPECT_EQ(stats[1].count, 1u);
  std::remove(path.c_str());
}

TEST(ObsQuery, CounterStatsAggregatePerTrack) {
  const std::string path = timeline_fixture();
  const std::vector<CounterStat> stats = counter_stats(load_trace(path));
  ASSERT_EQ(stats.size(), 1u);  // one (src, name) track across both lanes
  EXPECT_EQ(stats[0].src, "shard0");
  EXPECT_EQ(stats[0].name, "degree");
  EXPECT_EQ(stats[0].points, 8u);
  EXPECT_EQ(stats[0].min, 1.0);
  EXPECT_EQ(stats[0].max, 3.5);
  EXPECT_EQ(stats[0].last, 1.0);
  EXPECT_NEAR(stats[0].mean, 13.5 / 8.0, 1e-12);
  std::remove(path.c_str());
}

TEST(ObsQuery, ThresholdWindowsFollowStepFunctionSemanticsPerLane) {
  const std::string path = timeline_fixture();
  const TraceData trace = load_trace(path);

  // Sprint spans: degree > 1. Lane 0 opens at the ts=10 sample and closes
  // when ts=30 takes effect, then reopens for the ts=40 sample closing at
  // 50. Lane 1 never exceeds 1 and contributes no windows.
  ThresholdQuery above;
  above.track = "degree";
  above.threshold = 1.0;
  above.below = false;
  std::vector<ThresholdWindow> windows = threshold_windows(trace, above);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].src, "shard0");
  EXPECT_EQ(windows[0].lane, 0u);
  EXPECT_EQ(windows[0].start_us, 10.0);
  EXPECT_EQ(windows[0].end_us, 30.0);
  EXPECT_EQ(windows[0].duration_us(), 20.0);
  EXPECT_EQ(windows[0].extreme, 3.5);
  EXPECT_EQ(windows[1].start_us, 40.0);
  EXPECT_EQ(windows[1].end_us, 50.0);
  EXPECT_EQ(windows[1].extreme, 2.0);

  // min_duration filters the short reopening.
  above.min_duration_us = 15.0;
  windows = threshold_windows(trace, above);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].extreme, 3.5);

  // below: degree < 2 — a window still open at the track's last sample
  // closes there. Lane 0: [0,10) and [30,40); the final sample at 50
  // (value 1) opens a window that closes at 50 with zero duration. Lane 1
  // is below throughout: [15, 35].
  ThresholdQuery below;
  below.track = "degree";
  below.threshold = 2.0;
  windows = threshold_windows(trace, below);
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows[0].lane, 0u);
  EXPECT_EQ(windows[0].start_us, 0.0);
  EXPECT_EQ(windows[0].end_us, 10.0);
  EXPECT_EQ(windows[1].start_us, 30.0);
  EXPECT_EQ(windows[1].end_us, 40.0);
  EXPECT_EQ(windows[2].start_us, 50.0);
  EXPECT_EQ(windows[2].end_us, 50.0);
  EXPECT_EQ(windows[3].lane, 1u);
  EXPECT_EQ(windows[3].start_us, 15.0);
  EXPECT_EQ(windows[3].end_us, 35.0);

  EXPECT_THROW((void)threshold_windows(trace, ThresholdQuery{}),
               std::invalid_argument);
  std::remove(path.c_str());
}

TEST(ObsQuery, LoadsChromeTracesWithProcessNameResolution) {
  const std::string path = temp_path("query_chrome.json");
  write_file(
      path,
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
      "  {\"ph\": \"M\", \"pid\": 10, \"name\": \"process_name\","
      " \"args\": {\"name\": \"shard0/sim\"}},\n"
      "  {\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\","
      " \"args\": {\"name\": \"sim\"}},\n"
      "  {\"ph\": \"X\", \"ts\": 5, \"dur\": 10, \"pid\": 10, \"tid\": 2,"
      " \"cat\": \"c\", \"name\": \"merged-span\"},\n"
      "  {\"ph\": \"C\", \"ts\": 7, \"pid\": 1, \"tid\": 0,"
      " \"name\": \"soc\", \"args\": {\"value\": 0.5}}\n"
      "]}\n");
  const TraceData trace = load_trace(path);
  ASSERT_EQ(trace.events.size(), 2u);
  // Merged-timeline process names split into (src, domain)...
  EXPECT_EQ(trace.events[0].src, "shard0");
  EXPECT_EQ(trace.events[0].domain, "sim");
  EXPECT_EQ(trace.events[0].lane, 2u);
  EXPECT_EQ(trace.events[0].name, "merged-span");
  // ...single-process names stay src-less.
  EXPECT_EQ(trace.events[1].src, "");
  EXPECT_EQ(trace.events[1].domain, "sim");
  ASSERT_TRUE(trace.events[1].has_value);
  EXPECT_EQ(trace.events[1].value, 0.5);
  std::remove(path.c_str());
}

TEST(ObsQuery, LoadsSinkWrittenJsonlAndSurvivesTornTrailingLine) {
  const std::string path = temp_path("query_sink.jsonl");
  {
    JsonlStreamSink sink(path, {.buffer_events = 4});
    TraceEvent e;
    e.phase = 'C';
    e.name = "margin";
    for (int i = 0; i < 6; ++i) {
      e.ts_us = static_cast<double>(i);
      e.args = {arg("value", static_cast<double>(i))};
      sink.write(e);
    }
    sink.finalize();
  }
  {
    // A crashed worker's torn tail: half a JSON object, no newline.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"domain\":\"sim\",\"ph\":\"C\",\"ts\":99,\"na";
  }
  const TraceData trace = load_trace(path);
  EXPECT_EQ(trace.events.size(), 6u) << "the torn line is skipped, not fatal";
  const std::vector<CounterStat> stats = counter_stats(trace);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].points, 6u);
  std::remove(path.c_str());
}

TEST(ObsQuery, CsvWritersAreByteStable) {
  const std::string path = timeline_fixture();
  const TraceData trace = load_trace(path);
  const auto render = [&] {
    std::ostringstream out;
    write_scope_csv(out, scope_stats(trace));
    write_counter_csv(out, counter_stats(trace));
    ThresholdQuery q;
    q.track = "degree";
    q.threshold = 1.0;
    q.below = false;
    write_window_csv(out, threshold_windows(trace, q));
    return out.str();
  };
  const std::string first = render();
  EXPECT_EQ(first, render());
  EXPECT_NE(first.find("src,name,count,total_us,mean_us,min_us,max_us\n"),
            std::string::npos);
  EXPECT_NE(first.find("src,lane,start_us,end_us,duration_us,extreme\n"),
            std::string::npos);
  EXPECT_NE(first.find("shard0,0,10,30,20,3.5\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsQuery, JsonlWritersAreByteStable) {
  const std::string path = timeline_fixture();
  const TraceData trace = load_trace(path);
  const auto render = [&] {
    std::ostringstream out;
    write_scope_jsonl(out, scope_stats(trace));
    write_counter_jsonl(out, counter_stats(trace));
    ThresholdQuery q;
    q.track = "degree";
    q.threshold = 1.0;
    q.below = false;
    write_window_jsonl(out, threshold_windows(trace, q));
    return out.str();
  };
  const std::string first = render();
  EXPECT_EQ(first, render());
  // One self-describing object per row, numbers in canonical form.
  EXPECT_NE(first.find("{\"src\":\"shard0\",\"name\":\"work\",\"count\":2"),
            std::string::npos);
  EXPECT_NE(first.find("\"start_us\":10,\"end_us\":30,\"duration_us\":20,"
                       "\"extreme\":3.5}"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsQuery, InstantEventsKeepTheirArgsInSortedOrder) {
  const std::string path = temp_path("query_instant_args.jsonl");
  write_file(path,
             "{\"domain\":\"sim\",\"ph\":\"i\",\"ts\":5,\"lane\":0,"
             "\"cat\":\"decision\",\"name\":\"burst-start\","
             "\"args\":{\"id\":\"d0-1\",\"in_demand\":1.5,\"schema\":1,"
             "\"armed\":true}}\n"
             "{\"domain\":\"sim\",\"ph\":\"C\",\"ts\":6,\"lane\":0,"
             "\"name\":\"degree\",\"args\":{\"value\":2}}\n");
  const TraceData trace = load_trace(path);
  ASSERT_EQ(trace.events.size(), 2u);
  const QueryEvent& instant = trace.events[0];
  ASSERT_EQ(instant.args.size(), 4u);
  EXPECT_EQ(instant.args[0].first, "armed");
  EXPECT_EQ(instant.args[0].second, "true");
  EXPECT_EQ(instant.args[1].first, "id");
  EXPECT_EQ(instant.args[1].second, "d0-1");
  EXPECT_EQ(instant.args[2].second, "1.5");
  EXPECT_EQ(instant.args[3].first, "schema");
  // Counter events stay on the cheap path: value decoded, args not kept.
  EXPECT_TRUE(trace.events[1].args.empty());
  EXPECT_TRUE(trace.events[1].has_value);
  std::remove(path.c_str());
}

TEST(ObsQuery, RejectsUnreadableAndHandlesEmptyInput) {
  EXPECT_THROW((void)load_trace("/nonexistent-dir/trace.json"),
               std::invalid_argument);
  const std::string path = temp_path("query_empty.jsonl");
  write_file(path, "  \n\t\n");
  EXPECT_TRUE(load_trace(path).events.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcs::obs::query
