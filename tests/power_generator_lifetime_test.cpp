#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "power/generator.h"
#include "power/lifetime.h"

namespace dcs::power {
namespace {

TEST(DieselGenerator, StartsAfterDelay) {
  DieselGenerator gen("g", {.rated = Power::megawatts(12),
                            .start_delay = Duration::seconds(45)});
  EXPECT_FALSE(gen.running());
  EXPECT_DOUBLE_EQ(gen.available().w(), 0.0);
  gen.request_start();
  EXPECT_TRUE(gen.starting());
  for (int i = 0; i < 44; ++i) gen.tick(Duration::seconds(1));
  EXPECT_FALSE(gen.running());
  gen.tick(Duration::seconds(1));
  EXPECT_TRUE(gen.running());
  EXPECT_DOUBLE_EQ(gen.available().mw(), 12.0);
}

TEST(DieselGenerator, RequestStartIdempotent) {
  DieselGenerator gen("g", {.rated = Power::megawatts(1),
                            .start_delay = Duration::seconds(10)});
  gen.request_start();
  for (int i = 0; i < 5; ++i) gen.tick(Duration::seconds(1));
  gen.request_start();  // must not restart the countdown
  for (int i = 0; i < 5; ++i) gen.tick(Duration::seconds(1));
  EXPECT_TRUE(gen.running());
}

TEST(DieselGenerator, StopShutsDown) {
  DieselGenerator gen("g", {.rated = Power::megawatts(1),
                            .start_delay = Duration::seconds(1)});
  gen.request_start();
  gen.tick(Duration::seconds(2));
  ASSERT_TRUE(gen.running());
  gen.stop();
  EXPECT_FALSE(gen.running());
  EXPECT_DOUBLE_EQ(gen.available().w(), 0.0);
}

TEST(DieselGenerator, Validation) {
  EXPECT_THROW((void)DieselGenerator("g", {.rated = Power::zero()}),
               std::invalid_argument);
  EXPECT_THROW((void)DieselGenerator("g", {.rated = Power::watts(1),
                                     .start_delay = Duration::zero()}),
               std::invalid_argument);
}

TEST(BatteryLifetime, CycleCurveMonotone) {
  for (const Chemistry chem : {Chemistry::kLfp, Chemistry::kLeadAcid}) {
    const BatteryLifetimeModel model(chem);
    double prev = 1e12;
    for (double dod = 0.1; dod <= 1.0; dod += 0.05) {
      const double cycles = model.cycles_to_failure(dod);
      EXPECT_LT(cycles, prev) << "dod " << dod;
      prev = cycles;
    }
  }
}

TEST(BatteryLifetime, LfpOutlastsLeadAcid) {
  const BatteryLifetimeModel lfp(Chemistry::kLfp);
  const BatteryLifetimeModel la(Chemistry::kLeadAcid);
  for (double dod : {0.2, 0.5, 1.0}) {
    EXPECT_GT(lfp.cycles_to_failure(dod), la.cycles_to_failure(dod));
  }
}

TEST(BatteryLifetime, PaperAnchor_TenFullDischargesPerMonthIsNeutral) {
  // Section IV-B: "a UPS battery (e.g., LFP battery) can be fully
  // discharged for 10 times per month without its lifetime being affected".
  const BatteryLifetimeModel lfp(Chemistry::kLfp);
  EXPECT_TRUE(lfp.lifetime_neutral(10.0, 1.0));
  EXPECT_GE(lfp.wear_years(10.0, 1.0), 8.0);
}

TEST(BatteryLifetime, PaperAnchor_TwoHundredShallowBurstsAreNeutral) {
  // Section V-D: the Fig. 1 month has ~200 bursts discharging 26 % of the
  // UPS each, "which has no impact on UPS lifetime".
  const BatteryLifetimeModel lfp(Chemistry::kLfp);
  EXPECT_TRUE(lfp.lifetime_neutral(200.0, 0.26));
}

TEST(BatteryLifetime, HeavyAbuseIsNotNeutral) {
  const BatteryLifetimeModel lfp(Chemistry::kLfp);
  EXPECT_FALSE(lfp.lifetime_neutral(100.0, 1.0));
  const BatteryLifetimeModel la(Chemistry::kLeadAcid);
  // Lead-acid cannot even take the paper's 10 full discharges per month
  // over its 4-year service life (480 cycles vs ~500 at full depth... just
  // at the edge; 15 is clearly over).
  EXPECT_FALSE(la.lifetime_neutral(15.0, 1.0));
}

TEST(BatteryLifetime, RequiredServiceLife) {
  EXPECT_NEAR(BatteryLifetimeModel(Chemistry::kLfp).required_service_life().hrs(),
              8.0 * 365.0 * 24.0, 1.0);
  EXPECT_NEAR(
      BatteryLifetimeModel(Chemistry::kLeadAcid).required_service_life().hrs(),
      4.0 * 365.0 * 24.0, 1.0);
}

TEST(BatteryLifetime, WearYearsInverseInFrequency) {
  const BatteryLifetimeModel lfp(Chemistry::kLfp);
  const double at10 = lfp.wear_years(10.0, 0.5);
  const double at20 = lfp.wear_years(20.0, 0.5);
  EXPECT_NEAR(at10, 2.0 * at20, 1e-9);
  EXPECT_TRUE(std::isinf(lfp.wear_years(0.0, 0.5)));
}

TEST(BatteryLifetime, Validation) {
  const BatteryLifetimeModel lfp(Chemistry::kLfp);
  EXPECT_THROW((void)lfp.cycles_to_failure(0.0), std::invalid_argument);
  EXPECT_THROW((void)lfp.cycles_to_failure(1.5), std::invalid_argument);
  EXPECT_THROW((void)lfp.wear_years(-1.0, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace dcs::power
