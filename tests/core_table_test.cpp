#include "core/upper_bound_table.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dcs::core {
namespace {

UpperBoundTable grid() {
  // durations {1, 10, 20} min x degrees {2, 3}:
  //   1 min: 4.0 4.0
  //  10 min: 3.0 2.5
  //  20 min: 2.0 1.5
  return UpperBoundTable(
      {Duration::minutes(1), Duration::minutes(10), Duration::minutes(20)},
      {2.0, 3.0}, {4.0, 4.0, 3.0, 2.5, 2.0, 1.5});
}

TEST(UpperBoundTable, ExactGridPoints) {
  const UpperBoundTable t = grid();
  EXPECT_DOUBLE_EQ(t.lookup(Duration::minutes(1), 2.0), 4.0);
  EXPECT_DOUBLE_EQ(t.lookup(Duration::minutes(10), 3.0), 2.5);
  EXPECT_DOUBLE_EQ(t.lookup(Duration::minutes(20), 2.0), 2.0);
}

TEST(UpperBoundTable, BilinearInterior) {
  const UpperBoundTable t = grid();
  // Midway between 10 and 20 min at degree 2.5:
  // corners 3.0, 2.5, 2.0, 1.5 -> 2.25.
  EXPECT_NEAR(t.lookup(Duration::minutes(15), 2.5), 2.25, 1e-12);
}

TEST(UpperBoundTable, ClampsOutsideGrid) {
  const UpperBoundTable t = grid();
  EXPECT_DOUBLE_EQ(t.lookup(Duration::zero(), 2.0), 4.0);
  EXPECT_DOUBLE_EQ(t.lookup(Duration::hours(5), 3.5), 1.5);
  EXPECT_DOUBLE_EQ(t.lookup(Duration::minutes(10), 1.0), 3.0);
}

TEST(UpperBoundTable, BoundAtIndices) {
  const UpperBoundTable t = grid();
  EXPECT_DOUBLE_EQ(t.bound_at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(t.bound_at(2, 1), 1.5);
  EXPECT_THROW((void)t.bound_at(3, 0), std::invalid_argument);
  EXPECT_THROW((void)t.bound_at(0, 2), std::invalid_argument);
}

TEST(UpperBoundTable, Validation) {
  EXPECT_THROW((void)UpperBoundTable({Duration::minutes(1)}, {2.0, 3.0},
                               {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)UpperBoundTable({Duration::minutes(1), Duration::minutes(2)},
                               {2.0}, {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)UpperBoundTable({Duration::minutes(2), Duration::minutes(1)},
                               {2.0, 3.0}, {1.0, 1.0, 1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)UpperBoundTable({Duration::minutes(1), Duration::minutes(2)},
                               {2.0, 3.0}, {1.0, 1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)UpperBoundTable({Duration::minutes(1), Duration::minutes(2)},
                               {2.0, 3.0}, {1.0, 1.0, 1.0, 0.5}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcs::core
