#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/admission.h"
#include "workload/predictor.h"
#include "workload/yahoo_trace.h"

namespace dcs::workload {
namespace {

TEST(BurstTruth, MeasuresYahooBurst) {
  YahooTraceParams p;
  p.burst_degree = 3.0;
  p.burst_duration = Duration::minutes(10);
  const BurstTruth truth = measure_burst_truth(generate_yahoo_trace(p));
  EXPECT_NEAR(truth.duration.min(), 10.0, 0.1);
  EXPECT_NEAR(truth.max_degree, 3.0, 1e-9);
  EXPECT_NEAR(truth.mean_degree, 3.0, 0.05);
}

TEST(BurstTruth, NoBurstFloorsAtOne) {
  TimeSeries flat;
  flat.push_back(Duration::zero(), 0.5);
  flat.push_back(Duration::minutes(1), 0.5);
  const BurstTruth truth = measure_burst_truth(flat);
  EXPECT_DOUBLE_EQ(truth.duration.sec(), 0.0);
  EXPECT_DOUBLE_EQ(truth.max_degree, 1.0);
  EXPECT_DOUBLE_EQ(truth.mean_degree, 1.0);
}

TEST(ErrorfulForecast, AppliesRelativeError) {
  BurstTruth truth;
  truth.duration = Duration::minutes(10);
  const ErrorfulForecast over(truth, 0.5);
  EXPECT_NEAR(over.predicted_duration().min(), 15.0, 1e-9);
  EXPECT_DOUBLE_EQ(over.apply(2.0), 3.0);
  const ErrorfulForecast under(truth, -0.5);
  EXPECT_NEAR(under.predicted_duration().min(), 5.0, 1e-9);
  const ErrorfulForecast perfect(truth, 0.0);
  EXPECT_NEAR(perfect.predicted_duration().min(), 10.0, 1e-9);
}

TEST(ErrorfulForecast, MinusHundredPercentIsZero) {
  BurstTruth truth;
  truth.duration = Duration::minutes(10);
  const ErrorfulForecast f(truth, -1.0);
  EXPECT_DOUBLE_EQ(f.predicted_duration().sec(), 0.0);
  EXPECT_THROW((void)ErrorfulForecast(truth, -1.5), std::invalid_argument);
}

TEST(EwmaPredictor, FirstObservationPrimes) {
  EwmaPredictor p(0.5);
  EXPECT_FALSE(p.primed());
  EXPECT_DOUBLE_EQ(p.observe(2.0), 2.0);
  EXPECT_TRUE(p.primed());
}

TEST(EwmaPredictor, ConvergesToConstant) {
  EwmaPredictor p(0.3);
  for (int i = 0; i < 100; ++i) p.observe(5.0);
  EXPECT_NEAR(p.forecast(), 5.0, 1e-9);
}

TEST(EwmaPredictor, TracksStepChange) {
  EwmaPredictor p(0.5);
  p.observe(1.0);
  p.observe(3.0);
  EXPECT_DOUBLE_EQ(p.forecast(), 2.0);
  EXPECT_THROW((void)EwmaPredictor(0.0), std::invalid_argument);
  EXPECT_THROW((void)p.observe(-1.0), std::invalid_argument);
}

TEST(Admission, ServesUpToCapacity) {
  AdmissionController a;
  EXPECT_DOUBLE_EQ(a.admit(0.5, 1.0, Duration::seconds(1)), 0.5);
  EXPECT_DOUBLE_EQ(a.admit(2.0, 1.0, Duration::seconds(1)), 1.0);
}

TEST(Admission, IntegratesServedAndDropped) {
  AdmissionController a;
  a.admit(2.0, 1.0, Duration::seconds(10));  // serve 10, drop 10
  a.admit(0.5, 1.0, Duration::seconds(10));  // serve 5, drop 0
  EXPECT_DOUBLE_EQ(a.served_integral(), 15.0);
  EXPECT_DOUBLE_EQ(a.dropped_integral(), 10.0);
  EXPECT_DOUBLE_EQ(a.offered_integral(), 25.0);
  EXPECT_DOUBLE_EQ(a.drop_fraction(), 0.4);
  EXPECT_DOUBLE_EQ(a.degraded_time().sec(), 10.0);
}

TEST(Admission, NoOfferNoDropFraction) {
  const AdmissionController a;
  EXPECT_DOUBLE_EQ(a.drop_fraction(), 0.0);
}

TEST(Admission, ResetClears) {
  AdmissionController a;
  a.admit(2.0, 1.0, Duration::seconds(1));
  a.reset();
  EXPECT_DOUBLE_EQ(a.offered_integral(), 0.0);
  EXPECT_DOUBLE_EQ(a.degraded_time().sec(), 0.0);
}

TEST(Admission, Validation) {
  AdmissionController a;
  EXPECT_THROW((void)a.admit(-1.0, 1.0, Duration::seconds(1)), std::invalid_argument);
  EXPECT_THROW((void)a.admit(1.0, -1.0, Duration::seconds(1)), std::invalid_argument);
  EXPECT_THROW((void)a.admit(1.0, 1.0, Duration::zero()), std::invalid_argument);
}

}  // namespace
}  // namespace dcs::workload
