#include "workload/burst.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dcs::workload {
namespace {

TimeSeries square_bursts() {
  // 0..60 s at 0.5, 60..120 at 2.0, 120..180 at 0.8, 180..240 at 3.0,
  // final sample at 240 (no width).
  TimeSeries ts;
  ts.push_back(Duration::seconds(0), 0.5);
  ts.push_back(Duration::seconds(60), 2.0);
  ts.push_back(Duration::seconds(120), 0.8);
  ts.push_back(Duration::seconds(180), 3.0);
  ts.push_back(Duration::seconds(240), 0.5);
  return ts;
}

TEST(AnalyzeBursts, CountsAndDurations) {
  const BurstStats s = analyze_bursts(square_bursts());
  EXPECT_EQ(s.burst_count, 2u);
  EXPECT_DOUBLE_EQ(s.over_capacity_time.sec(), 120.0);
  EXPECT_DOUBLE_EQ(s.longest_burst.sec(), 60.0);
  EXPECT_DOUBLE_EQ(s.peak_demand, 3.0);
}

TEST(AnalyzeBursts, MeanBurstDemand) {
  const BurstStats s = analyze_bursts(square_bursts());
  EXPECT_DOUBLE_EQ(s.mean_burst_demand, 2.5);  // (2.0 + 3.0) / 2 equal widths
}

TEST(AnalyzeBursts, NoBurstTrace) {
  TimeSeries ts;
  ts.push_back(Duration::seconds(0), 0.5);
  ts.push_back(Duration::seconds(60), 0.9);
  const BurstStats s = analyze_bursts(ts);
  EXPECT_EQ(s.burst_count, 0u);
  EXPECT_DOUBLE_EQ(s.over_capacity_time.sec(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_burst_demand, 0.0);
}

TEST(AnalyzeBursts, CustomThreshold) {
  const BurstStats s = analyze_bursts(square_bursts(), 2.5);
  EXPECT_EQ(s.burst_count, 1u);
  EXPECT_DOUBLE_EQ(s.over_capacity_time.sec(), 60.0);
}

TEST(AnalyzeBursts, ContiguousBurstCountsOnce) {
  TimeSeries ts;
  ts.push_back(Duration::seconds(0), 2.0);
  ts.push_back(Duration::seconds(30), 2.5);
  ts.push_back(Duration::seconds(60), 3.0);
  ts.push_back(Duration::seconds(90), 0.5);
  const BurstStats s = analyze_bursts(ts);
  EXPECT_EQ(s.burst_count, 1u);
  EXPECT_DOUBLE_EQ(s.over_capacity_time.sec(), 90.0);
}

TEST(AnalyzeBursts, EmptyThrows) {
  EXPECT_THROW((void)analyze_bursts(TimeSeries{}), std::invalid_argument);
}

TEST(InjectBurst, ReplacesWindow) {
  TimeSeries base;
  for (int i = 0; i <= 100; ++i) base.push_back(Duration::seconds(i), 0.4);
  const TimeSeries t =
      inject_burst(base, Duration::seconds(20), Duration::seconds(30), 3.2);
  EXPECT_DOUBLE_EQ(t.at(Duration::seconds(10)), 0.4);
  EXPECT_DOUBLE_EQ(t.at(Duration::seconds(20)), 3.2);
  EXPECT_DOUBLE_EQ(t.at(Duration::seconds(49)), 3.2);
  EXPECT_DOUBLE_EQ(t.at(Duration::seconds(50)), 0.4);
}

TEST(InjectBurst, BlendKeepsVariation) {
  TimeSeries base;
  base.push_back(Duration::seconds(0), 1.2);
  base.push_back(Duration::seconds(1), 0.8);
  base.push_back(Duration::seconds(2), 1.0);
  const TimeSeries t =
      inject_burst(base, Duration::zero(), Duration::seconds(2), 3.0, 0.5);
  EXPECT_DOUBLE_EQ(t.at(Duration::seconds(0)), 3.0 + 0.5 * 0.2);
  EXPECT_DOUBLE_EQ(t.at(Duration::seconds(1)), 3.0 - 0.5 * 0.2);
}

TEST(InjectBurst, PreservesSampleCount) {
  TimeSeries base;
  for (int i = 0; i < 50; ++i) base.push_back(Duration::seconds(i), 0.5);
  const TimeSeries t =
      inject_burst(base, Duration::seconds(10), Duration::seconds(5), 2.0);
  EXPECT_EQ(t.size(), base.size());
}

TEST(InjectBurst, Validation) {
  TimeSeries base;
  base.push_back(Duration::zero(), 1.0);
  base.push_back(Duration::seconds(1), 1.0);
  EXPECT_THROW((void)inject_burst(base, Duration::zero(), Duration::zero(), 2.0),
               std::invalid_argument);
  EXPECT_THROW((void)inject_burst(base, Duration::zero(), Duration::seconds(1), 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)inject_burst(base, Duration::zero(), Duration::seconds(1), 2.0, 2.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcs::workload
