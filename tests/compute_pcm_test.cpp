#include "compute/pcm_heatsink.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/datacenter.h"
#include "workload/yahoo_trace.h"

namespace dcs::compute {
namespace {

PcmHeatSink small_pcm(double watts_minutes = 90.0 * 2.0) {
  PcmHeatSink::Params p;
  p.latent_capacity = Energy::joules(watts_minutes * 60.0);
  return PcmHeatSink(p);
}

TEST(PcmHeatSink, StartsSolid) {
  const PcmHeatSink pcm;
  EXPECT_DOUBLE_EQ(pcm.melted_fraction(), 0.0);
  EXPECT_FALSE(pcm.exhausted());
}

TEST(PcmHeatSink, SustainablePowerNeverMelts) {
  PcmHeatSink pcm;
  for (int i = 0; i < 100000; ++i) {
    pcm.step(Power::watts(35.0), Duration::seconds(1));
  }
  EXPECT_DOUBLE_EQ(pcm.melted_fraction(), 0.0);
}

TEST(PcmHeatSink, MeltsAtExcessRate) {
  // 2 "full-sprint minutes" of capacity at 90 W excess.
  PcmHeatSink pcm = small_pcm();
  // Full sprint: 125 W chip = 90 W over the 35 W sustainable level.
  for (int i = 0; i < 60; ++i) pcm.step(Power::watts(125.0), Duration::seconds(1));
  EXPECT_NEAR(pcm.melted_fraction(), 0.5, 1e-9);
  for (int i = 0; i < 60; ++i) pcm.step(Power::watts(125.0), Duration::seconds(1));
  EXPECT_TRUE(pcm.exhausted());
}

TEST(PcmHeatSink, ResolidifiesWithSpareCapacity) {
  PcmHeatSink pcm = small_pcm();
  for (int i = 0; i < 60; ++i) pcm.step(Power::watts(125.0), Duration::seconds(1));
  const double melted = pcm.melted_fraction();
  // Idle chip (5 W): 30 W of spare removal re-freezes.
  for (int i = 0; i < 60; ++i) pcm.step(Power::watts(5.0), Duration::seconds(1));
  EXPECT_LT(pcm.melted_fraction(), melted);
  // 90 W x 60 s melted, 30 W x 60 s frozen: 2/3 of the melt remains.
  EXPECT_NEAR(pcm.melted_fraction(), melted * 2.0 / 3.0, 1e-9);
}

TEST(PcmHeatSink, NeverOverMeltsOrUnderFreezes) {
  PcmHeatSink pcm = small_pcm(10.0);
  for (int i = 0; i < 1000; ++i) pcm.step(Power::watts(200.0), Duration::seconds(1));
  EXPECT_DOUBLE_EQ(pcm.melted_fraction(), 1.0);
  for (int i = 0; i < 100000; ++i) pcm.step(Power::zero(), Duration::seconds(1));
  EXPECT_DOUBLE_EQ(pcm.melted_fraction(), 0.0);
}

TEST(PcmHeatSink, TimeToExhaustion) {
  PcmHeatSink pcm = small_pcm();
  EXPECT_TRUE(pcm.time_to_exhaustion(Power::watts(35.0)).is_infinite());
  EXPECT_NEAR(pcm.time_to_exhaustion(Power::watts(125.0)).min(), 2.0, 1e-9);
  for (int i = 0; i < 60; ++i) pcm.step(Power::watts(125.0), Duration::seconds(1));
  EXPECT_NEAR(pcm.time_to_exhaustion(Power::watts(125.0)).min(), 1.0, 1e-9);
}

TEST(PcmHeatSink, ResetRestoresSolid) {
  PcmHeatSink pcm = small_pcm();
  pcm.step(Power::watts(125.0), Duration::minutes(1));
  pcm.reset();
  EXPECT_DOUBLE_EQ(pcm.melted_fraction(), 0.0);
}

TEST(PcmHeatSink, Validation) {
  PcmHeatSink::Params p;
  p.latent_capacity = Energy::zero();
  EXPECT_THROW((void)PcmHeatSink{p}, std::invalid_argument);
  p = {};
  p.sustainable = Power::zero();
  EXPECT_THROW((void)PcmHeatSink{p}, std::invalid_argument);
  PcmHeatSink pcm;
  EXPECT_THROW((void)pcm.step(Power::watts(-1), Duration::seconds(1)),
               std::invalid_argument);
  EXPECT_THROW((void)pcm.step(Power::watts(1), Duration::zero()),
               std::invalid_argument);
}

TEST(PcmIntegration, DefaultPackageDoesNotBindBeforeDcLevel) {
  // The paper assumes chip sprinting is "already safely enabled"; the
  // default PCM must not change any data-center result.
  core::DataCenterConfig big = {};
  big.fleet.pdu_count = 2;
  core::DataCenterConfig tiny = big;
  tiny.chip_pcm.latent_capacity = Energy::joules(90.0 * 45.0);  // ~45 s
  workload::YahooTraceParams p;
  p.burst_degree = 3.2;
  p.burst_duration = Duration::minutes(10);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  core::GreedyStrategy greedy;
  const core::RunResult with_default = core::DataCenter(big).run(trace, &greedy);
  const core::RunResult with_tiny = core::DataCenter(tiny).run(trace, &greedy);
  // Default: the DC level limits first, same as before the PCM existed.
  EXPECT_GT(with_default.performance_factor, 1.5);
  // Tiny PCM: the chip level ends the sprint within about a minute.
  EXPECT_LT(with_tiny.performance_factor, with_default.performance_factor);
  EXPECT_LT(with_tiny.sprint_time.min(), 2.0);
}

}  // namespace
}  // namespace dcs::compute
