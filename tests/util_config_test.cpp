#include "util/config.h"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace dcs {
namespace {

TEST(Config, ParsesKeyValueLines) {
  const Config c = Config::from_string("a=1\nb = hello \n");
  EXPECT_TRUE(c.contains("a"));
  EXPECT_EQ(c.get_string("b", ""), "hello");
}

TEST(Config, SkipsCommentsAndBlankLines) {
  const Config c = Config::from_string("# comment\n\n  \nx=2 # trailing\n");
  EXPECT_EQ(c.get_int("x", 0), 2);
  EXPECT_EQ(c.entries().size(), 1u);
}

TEST(Config, RejectsMalformedLines) {
  EXPECT_THROW((void)Config::from_string("no equals sign"), std::invalid_argument);
  EXPECT_THROW((void)Config::from_string("=value"), std::invalid_argument);
}

TEST(Config, FromArgs) {
  const std::array<const char*, 2> args = {"k=v", "n=3"};
  const Config c = Config::from_args(args);
  EXPECT_EQ(c.get_string("k", ""), "v");
  EXPECT_EQ(c.get_int("n", 0), 3);
}

TEST(Config, FromArgsRejectsBareTokens) {
  const std::array<const char*, 1> args = {"novalue"};
  EXPECT_THROW((void)Config::from_args(args), std::invalid_argument);
}

TEST(Config, FromArgsRejectsMalformedKeys) {
  const std::array<const char*, 1> dashed = {"--pdus=8"};
  EXPECT_THROW((void)Config::from_args(dashed), std::invalid_argument);
  const std::array<const char*, 1> spaced = {"pd us=8"};
  EXPECT_THROW((void)Config::from_args(spaced), std::invalid_argument);
  const std::array<const char*, 1> empty_key = {"=8"};
  EXPECT_THROW((void)Config::from_args(empty_key), std::invalid_argument);
  // Dots and underscores stay legal (config-file style keys).
  const std::array<const char*, 1> dotted = {"fleet.pdu_count=4"};
  EXPECT_EQ(Config::from_args(dotted).get_int("fleet.pdu_count", 0), 4);
}

TEST(Config, RequireKnownAcceptsAllowedKeys) {
  const Config c = Config::from_string("pdus=8\ncsv=out\n");
  const std::array<std::string_view, 3> allowed = {"pdus", "csv", "pue"};
  EXPECT_NO_THROW(c.require_known(allowed));
  EXPECT_NO_THROW(Config().require_known(allowed));
}

TEST(Config, RequireKnownRejectsUnknownKeys) {
  const Config c = Config::from_string("pdus=8\npduss=9\n");
  const std::array<std::string_view, 2> allowed = {"pdus", "csv"};
  try {
    c.require_known(allowed);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pduss"), std::string::npos)
        << "must name the offending key: " << what;
    EXPECT_NE(what.find("pdus"), std::string::npos)
        << "must list the allowed keys: " << what;
  }
}

TEST(Config, TypedGettersFallBack) {
  const Config c = Config::from_string("");
  EXPECT_EQ(c.get_string("missing", "def"), "def");
  EXPECT_DOUBLE_EQ(c.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_TRUE(c.get_bool("missing", true));
}

TEST(Config, DoubleParsing) {
  const Config c = Config::from_string("x=2.5\nbad=abc\npartial=1.5x");
  EXPECT_DOUBLE_EQ(c.get_double("x", 0.0), 2.5);
  EXPECT_THROW((void)c.get_double("bad", 0.0), std::invalid_argument);
  EXPECT_THROW((void)c.get_double("partial", 0.0), std::invalid_argument);
}

TEST(Config, IntParsing) {
  const Config c = Config::from_string("x=-5\nbad=1.5");
  EXPECT_EQ(c.get_int("x", 0), -5);
  EXPECT_THROW((void)c.get_int("bad", 0), std::invalid_argument);
}

TEST(Config, BoolParsing) {
  const Config c = Config::from_string(
      "a=true\nb=FALSE\nc=1\nd=off\ne=Yes\nbad=maybe");
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
  EXPECT_TRUE(c.get_bool("e", false));
  EXPECT_THROW((void)c.get_bool("bad", false), std::invalid_argument);
}

TEST(Config, SetOverwrites) {
  Config c;
  c.set("k", "1");
  c.set("k", "2");
  EXPECT_EQ(c.get_int("k", 0), 2);
}

}  // namespace
}  // namespace dcs
