#include "exp/sweep.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/datacenter.h"
#include "core/oracle.h"
#include "exp/aggregator.h"
#include "exp/reporter.h"
#include "exp/runner.h"
#include "faults/schedule.h"
#include "workload/yahoo_trace.h"

namespace dcs::exp {
namespace {

SweepSpec small_spec() {
  SweepSpec spec("unit", /*base_seed=*/42);
  spec.add_axis("strategy", {"a", "b"});
  spec.add_axis("severity", std::vector<double>{0.5, 1.0, 1.5}, 1);
  spec.set_replicates(2);
  return spec;
}

TEST(ExpSweep, ExpansionOrderIsCellMajorReplicateFastest) {
  const SweepSpec spec = small_spec();
  EXPECT_EQ(spec.cell_count(), 6u);
  EXPECT_EQ(spec.task_count(), 12u);
  const std::vector<SweepSpec::Task> tasks = spec.tasks();
  ASSERT_EQ(tasks.size(), 12u);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].index, i);
    EXPECT_EQ(tasks[i].cell, i / 2);
    EXPECT_EQ(tasks[i].replicate, i % 2);
    EXPECT_EQ(tasks[i].level, spec.cell_levels(tasks[i].cell));
  }
  // Row-major over the axes, last axis fastest.
  EXPECT_EQ(spec.cell_levels(0), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(spec.cell_levels(2), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(spec.cell_levels(3), (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(spec.label(tasks[1 * 2], 1), "1.0");
  EXPECT_DOUBLE_EQ(spec.value(tasks[1 * 2], 1), 1.0);
  EXPECT_EQ(spec.label(tasks[3 * 2], 0), "b");
}

TEST(ExpSweep, SeedsAreDistinctAndStableUnderReplicateExtension) {
  SweepSpec spec = small_spec();
  const std::vector<SweepSpec::Task> before = spec.tasks();
  std::set<std::uint64_t> seeds;
  for (const auto& t : before) seeds.insert(t.seed);
  EXPECT_EQ(seeds.size(), before.size()) << "task seeds must be distinct";

  spec.set_replicates(5);
  const std::vector<SweepSpec::Task> after = spec.tasks();
  for (const auto& t : before) {
    EXPECT_EQ(after[t.cell * 5 + t.replicate].seed, t.seed)
        << "extending replicates must not reshuffle existing seeds";
  }
}

TEST(ExpSweep, SeedsDependOnBaseSeed) {
  SweepSpec a("s", 1);
  SweepSpec b("s", 2);
  a.set_replicates(4);
  b.set_replicates(4);
  const auto ta = a.tasks();
  const auto tb = b.tasks();
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_NE(ta[i].seed, tb[i].seed);
  }
}

TEST(ExpSweep, RunnerCollectsRowsInTaskOrder) {
  const SweepSpec spec = small_spec();
  const SweepRun run = run_sweep(
      spec, {"index", "severity"},
      [&](const SweepSpec::Task& task) {
        return std::vector<double>{static_cast<double>(task.index),
                                   spec.value(task, 1)};
      },
      {.threads = 4});
  ASSERT_EQ(run.rows.size(), spec.task_count());
  for (std::size_t i = 0; i < run.rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(run.rows[i][0], static_cast<double>(i));
  }
}

TEST(ExpSweep, RunnerRejectsWrongMetricCount) {
  const SweepSpec spec = small_spec();
  EXPECT_THROW(
      (void)run_sweep(
          spec, {"a", "b"},
          [](const SweepSpec::Task&) { return std::vector<double>{1.0}; },
          {.threads = 2}),
      std::invalid_argument);
}

TEST(ExpSweep, AggregatorComputesKnownStats) {
  SweepSpec spec("agg", 7);
  spec.add_axis("x", std::vector<double>{1.0}, 0);
  spec.set_replicates(4);
  const SweepRun run = run_sweep(
      spec, {"m"},
      [](const SweepSpec::Task& task) {
        // Replicates 0..3 -> 1, 2, 3, 4.
        return std::vector<double>{static_cast<double>(task.replicate + 1)};
      },
      {.threads = 1});
  const SweepSummary summary = aggregate(spec, run);
  ASSERT_EQ(summary.cells.size(), 1u);
  const MetricSummary& m = summary.cells[0].metrics[0];
  EXPECT_EQ(m.count, 4u);
  EXPECT_DOUBLE_EQ(m.mean, 2.5);
  EXPECT_DOUBLE_EQ(m.min, 1.0);
  EXPECT_DOUBLE_EQ(m.max, 4.0);
  EXPECT_GT(m.stddev, 0.0);
  EXPECT_GT(m.ci95, 0.0);
  EXPECT_GE(m.p95, m.p50);
}

TEST(ExpSweep, ReporterEmitsWellFormedOutput) {
  const SweepSpec spec = small_spec();
  const SweepRun run = run_sweep(
      spec, {"m"},
      [](const SweepSpec::Task& task) {
        return std::vector<double>{static_cast<double>(task.index)};
      },
      {.threads = 2});
  const SweepSummary summary = aggregate(spec, run);

  std::ostringstream rows_csv;
  write_rows_csv(rows_csv, spec, run);
  EXPECT_NE(rows_csv.str().find("strategy,severity,replicate,seed,m"),
            std::string::npos);

  std::ostringstream summary_csv;
  write_summary_csv(summary_csv, summary);
  EXPECT_NE(summary_csv.str().find("m_mean"), std::string::npos);
  EXPECT_NE(summary_csv.str().find("m_ci95"), std::string::npos);

  std::ostringstream json;
  write_summary_json(json, summary);
  EXPECT_NE(json.str().find("\"sweep\": \"unit\""), std::string::npos);
  EXPECT_NE(json.str().find("\"runs_per_second\""), std::string::npos);

  std::ostringstream perf;
  write_perf_record_json(perf, summary);
  EXPECT_NE(perf.str().find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(perf.str().find("\"threads\""), std::string::npos);
}

// --- Bit-identity: the acceptance criterion of the subsystem ---------------

/// A short but real simulation sweep, including a random fault schedule per
/// replicate, exactly as the survival ablation runs it.
SweepRun run_sim_sweep(std::size_t threads) {
  workload::YahooTraceParams yp;
  yp.length = Duration::minutes(10);
  yp.burst_start = Duration::minutes(2);
  yp.burst_duration = Duration::minutes(4);
  yp.burst_degree = 3.0;
  const TimeSeries trace = workload::generate_yahoo_trace(yp);

  core::DataCenterConfig config;
  config.fleet.pdu_count = 2;

  SweepSpec spec("bit_identity", /*base_seed=*/0xB17B17ULL);
  spec.add_axis("severity", std::vector<double>{0.5, 1.0}, 1);
  spec.set_replicates(3);
  return run_sweep(
      spec, {"perf", "survived", "max_ladder"},
      [&](const SweepSpec::Task& task) {
        core::DataCenter dc(config);
        const faults::FaultSchedule schedule = faults::FaultSchedule::random(
            task.seed, trace.end_time(), spec.value(task, 0));
        core::ConstantBoundStrategy bound(2.4);
        core::RunOptions opts;
        opts.faults = &schedule;
        const core::RunResult r = dc.run(trace, &bound, opts);
        return std::vector<double>{
            r.performance_factor,
            (!r.tripped && r.watchdog.ok()) ? 1.0 : 0.0,
            static_cast<double>(r.max_degradation)};
      },
      {.threads = threads});
}

TEST(ExpSweep, SimulationSweepIsBitIdenticalAcrossThreadCounts) {
  const SweepRun serial = run_sim_sweep(1);
  const SweepRun parallel = run_sim_sweep(4);
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_EQ(serial.rows[i], parallel.rows[i]) << "task " << i;
  }
  EXPECT_EQ(serial.threads_used, 1u);
  EXPECT_EQ(parallel.threads_used, 4u);
}

TEST(ExpSweep, OracleSearchIsBitIdenticalAcrossThreadCounts) {
  workload::YahooTraceParams yp;
  yp.length = Duration::minutes(10);
  yp.burst_start = Duration::minutes(2);
  yp.burst_duration = Duration::minutes(4);
  yp.burst_degree = 3.0;
  const TimeSeries trace = workload::generate_yahoo_trace(yp);
  core::DataCenterConfig config;
  config.fleet.pdu_count = 2;
  const core::DataCenter dc(config);

  const core::OracleResult serial = core::oracle_search(dc, trace, 4, 1);
  const core::OracleResult parallel = core::oracle_search(dc, trace, 4, 4);
  EXPECT_EQ(serial.best_bound, parallel.best_bound);
  EXPECT_EQ(serial.best_performance, parallel.best_performance);
  ASSERT_EQ(serial.sweep.size(), parallel.sweep.size());
  for (std::size_t i = 0; i < serial.sweep.size(); ++i) {
    EXPECT_EQ(serial.sweep[i], parallel.sweep[i]) << "candidate " << i;
  }
}

}  // namespace
}  // namespace dcs::exp
