// Sampling profiler: refcounted lifecycle, folded-stack accumulation from
// the lock-free scope stacks, and env-driven activation.
#include "obs/sampler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "obs/profile.h"

namespace dcs::obs {
namespace {

/// Sampler and Profiler are process-wide singletons; every test starts from
/// a clean, stopped state and leaves it that way.
class ObsSampler : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(Sampler::instance().active());
    Sampler::instance().reset();
    Profiler::instance().reset();
    Profiler::set_thread_lane(0);
  }
  void TearDown() override {
    ASSERT_FALSE(Sampler::instance().active());
    Sampler::instance().reset();
    Profiler::instance().reset();
    Profiler::set_thread_lane(0);
  }
};

TEST_F(ObsSampler, StartStopIsRefcounted) {
  Sampler& s = Sampler::instance();
  s.start(Duration::seconds(0.001));
  s.start(Duration::seconds(0.001));  // nested sweep shares the thread
  EXPECT_TRUE(s.active());
  EXPECT_TRUE(Profiler::instance().sampling());
  s.stop();
  EXPECT_TRUE(s.active());
  s.stop();
  EXPECT_FALSE(s.active());
  EXPECT_FALSE(Profiler::instance().sampling());
}

TEST_F(ObsSampler, CapturesNestedScopeStacks) {
  Sampler& s = Sampler::instance();
  s.start(Duration::seconds(0.0005));
  {
    DCS_OBS_SCOPE("outer");
    DCS_OBS_SCOPE("inner");
    // Hold the stack open until at least a few samples landed.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (s.sample_count() < 3 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  s.stop();
  const FoldedStacks folded = s.folded();
  ASSERT_FALSE(folded.empty());
  EXPECT_GT(folded.count("main;outer;inner"), 0u);
  for (const auto& [stack, count] : folded) {
    EXPECT_EQ(stack.rfind("main;", 0), 0u) << stack;
    EXPECT_GT(count, 0u);
  }
}

TEST_F(ObsSampler, ResetDropsSamplesAndWriteFoldedFormats) {
  FoldedStacks folded{{"main;exp.task;sim.run", 7}, {"worker-1;exp.task", 2}};
  std::ostringstream out;
  write_folded(out, folded);
  EXPECT_EQ(out.str(), "main;exp.task;sim.run 7\nworker-1;exp.task 2\n");

  Sampler& s = Sampler::instance();
  s.start(Duration::seconds(0.0005));
  {
    DCS_OBS_SCOPE("busy");
    while (s.sample_count() < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  s.stop();
  s.reset();
  EXPECT_EQ(s.sample_count(), 0u);
  EXPECT_TRUE(s.folded().empty());
}

TEST_F(ObsSampler, EnvHzParsesTheSamplerVariable) {
  ASSERT_EQ(setenv("DCS_OBS_SAMPLER", "97", 1), 0);
  EXPECT_DOUBLE_EQ(Sampler::env_hz(), 97.0);
  ASSERT_EQ(setenv("DCS_OBS_SAMPLER", "not-a-rate", 1), 0);
  EXPECT_DOUBLE_EQ(Sampler::env_hz(), 0.0);
  ASSERT_EQ(setenv("DCS_OBS_SAMPLER", "-5", 1), 0);
  EXPECT_DOUBLE_EQ(Sampler::env_hz(), 0.0);
  ASSERT_EQ(unsetenv("DCS_OBS_SAMPLER"), 0);
  EXPECT_DOUBLE_EQ(Sampler::env_hz(), 0.0);
}

TEST_F(ObsSampler, ScopedRunIsNoopWithoutEnv) {
  ASSERT_EQ(unsetenv("DCS_OBS_SAMPLER"), 0);
  {
    const ScopedSamplerRun run;
    EXPECT_FALSE(Sampler::instance().active());
  }
  ASSERT_EQ(setenv("DCS_OBS_SAMPLER", "200", 1), 0);
  {
    const ScopedSamplerRun run;
    EXPECT_TRUE(Sampler::instance().active());
  }
  EXPECT_FALSE(Sampler::instance().active());
  ASSERT_EQ(unsetenv("DCS_OBS_SAMPLER"), 0);
}

}  // namespace
}  // namespace dcs::obs
