#include "util/units.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_DOUBLE_EQ(Duration::minutes(1).sec(), 60.0);
  EXPECT_DOUBLE_EQ(Duration::hours(1).sec(), 3600.0);
  EXPECT_DOUBLE_EQ(Duration::seconds(90).min(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::minutes(90).hrs(), 1.5);
}

TEST(Duration, Arithmetic) {
  const Duration d = Duration::seconds(30) + Duration::minutes(1);
  EXPECT_DOUBLE_EQ(d.sec(), 90.0);
  EXPECT_DOUBLE_EQ((d - Duration::seconds(30)).sec(), 60.0);
  EXPECT_DOUBLE_EQ((d * 2.0).sec(), 180.0);
  EXPECT_DOUBLE_EQ((2.0 * d).sec(), 180.0);
  EXPECT_DOUBLE_EQ((d / 3.0).sec(), 30.0);
  EXPECT_DOUBLE_EQ(d / Duration::seconds(45), 2.0);
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::seconds(10);
  d += Duration::seconds(5);
  EXPECT_DOUBLE_EQ(d.sec(), 15.0);
  d -= Duration::seconds(3);
  EXPECT_DOUBLE_EQ(d.sec(), 12.0);
  d *= 0.5;
  EXPECT_DOUBLE_EQ(d.sec(), 6.0);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::seconds(59), Duration::minutes(1));
  EXPECT_GE(Duration::minutes(1), Duration::seconds(60));
  EXPECT_EQ(Duration::hours(2), Duration::minutes(120));
}

TEST(Duration, Infinity) {
  EXPECT_TRUE(Duration::infinity().is_infinite());
  EXPECT_FALSE(Duration::seconds(1e12).is_infinite());
  EXPECT_GT(Duration::infinity(), Duration::hours(1e6));
}

TEST(Power, FactoryUnitsAgree) {
  EXPECT_DOUBLE_EQ(Power::kilowatts(1).w(), 1000.0);
  EXPECT_DOUBLE_EQ(Power::megawatts(1).kw(), 1000.0);
  EXPECT_DOUBLE_EQ(Power::watts(5e6).mw(), 5.0);
}

TEST(Power, Arithmetic) {
  const Power p = Power::watts(100) + Power::watts(50);
  EXPECT_DOUBLE_EQ(p.w(), 150.0);
  EXPECT_DOUBLE_EQ((p - Power::watts(100)).w(), 50.0);
  EXPECT_DOUBLE_EQ((p * 2.0).w(), 300.0);
  EXPECT_DOUBLE_EQ((p / 3.0).w(), 50.0);
  EXPECT_DOUBLE_EQ(p / Power::watts(75), 2.0);
  EXPECT_DOUBLE_EQ((-p).w(), -150.0);
}

TEST(Energy, FactoryUnitsAgree) {
  EXPECT_DOUBLE_EQ(Energy::watt_hours(1).j(), 3600.0);
  EXPECT_DOUBLE_EQ(Energy::kilowatt_hours(1).wh(), 1000.0);
  EXPECT_DOUBLE_EQ(Energy::joules(7.2e6).kwh(), 2.0);
}

TEST(CrossDimension, PowerTimesDurationIsEnergy) {
  const Energy e = Power::watts(55) * Duration::minutes(6);
  EXPECT_DOUBLE_EQ(e.j(), 55.0 * 360.0);
  EXPECT_DOUBLE_EQ((Duration::minutes(6) * Power::watts(55)).j(), e.j());
}

TEST(CrossDimension, EnergyOverDurationIsPower) {
  const Power p = Energy::watt_hours(10) / Duration::hours(2);
  EXPECT_DOUBLE_EQ(p.w(), 5.0);
}

TEST(CrossDimension, EnergyOverPowerIsDuration) {
  // The paper's UPS sizing: 5.5 Wh at 55 W lasts 6 minutes.
  const Duration d = Energy::watt_hours(5.5) / Power::watts(55);
  EXPECT_DOUBLE_EQ(d.min(), 6.0);
}

TEST(Charge, AmpHoursAndEnergy) {
  const Charge q = Charge::amp_hours(0.5);
  EXPECT_DOUBLE_EQ(q.c(), 1800.0);
  // 0.5 Ah at 11 V = 5.5 Wh, the paper's per-server battery.
  EXPECT_DOUBLE_EQ(q.at_volts(11.0).wh(), 5.5);
}

TEST(Temperature, Arithmetic) {
  const Temperature t = Temperature::celsius(25) + Temperature::celsius(10);
  EXPECT_DOUBLE_EQ(t.c(), 35.0);
  EXPECT_GT(t, Temperature::celsius(34.9));
  EXPECT_DOUBLE_EQ((t * 0.5).c(), 17.5);
}

TEST(ToString, PicksSensibleUnits) {
  EXPECT_EQ(to_string(Duration::seconds(30)), "30 s");
  EXPECT_EQ(to_string(Duration::minutes(5)), "5 min");
  EXPECT_EQ(to_string(Duration::hours(2)), "2 h");
  EXPECT_EQ(to_string(Duration::infinity()), "inf");
  EXPECT_EQ(to_string(Power::watts(55)), "55 W");
  EXPECT_EQ(to_string(Power::kilowatts(13.75)), "13.75 kW");
  EXPECT_EQ(to_string(Power::megawatts(10)), "10 MW");
  EXPECT_EQ(to_string(Energy::watt_hours(5.5)), "5.5 Wh");
  EXPECT_EQ(to_string(Charge::amp_hours(0.5)), "0.5 Ah");
}

TEST(Defaults, ZeroInitialized) {
  EXPECT_DOUBLE_EQ(Duration{}.sec(), 0.0);
  EXPECT_DOUBLE_EQ(Power{}.w(), 0.0);
  EXPECT_DOUBLE_EQ(Energy{}.j(), 0.0);
  EXPECT_EQ(Power::zero(), Power{});
  EXPECT_EQ(Energy::zero(), Energy{});
  EXPECT_EQ(Duration::zero(), Duration{});
}

}  // namespace
}  // namespace dcs
