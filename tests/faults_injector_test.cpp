#include "faults/injector.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/config.h"
#include "faults/fault.h"
#include "faults/schedule.h"
#include "faults/watchdog.h"
#include "power/generator.h"
#include "power/topology.h"
#include "thermal/cooling_plant.h"
#include "thermal/room_model.h"
#include "thermal/tes_tank.h"

namespace dcs::faults {
namespace {

core::DataCenterConfig small_config() {
  core::DataCenterConfig c;
  c.fleet.pdu_count = 2;
  return c;
}

Fault make(FaultKind kind, double start_s, double end_s, double magnitude,
           SensorChannel channel = SensorChannel::kDemand) {
  return Fault{kind, Duration::seconds(start_s), Duration::seconds(end_s),
               magnitude, channel};
}

// ---------------------------------------------------------------------------
// Fault / severity
// ---------------------------------------------------------------------------

TEST(Fault, ActiveWindowIsHalfOpen) {
  const Fault f = make(FaultKind::kUpsBankOutage, 10, 20, 0.5);
  EXPECT_FALSE(f.active_at(Duration::seconds(9.9)));
  EXPECT_TRUE(f.active_at(Duration::seconds(10)));
  EXPECT_TRUE(f.active_at(Duration::seconds(19.9)));
  EXPECT_FALSE(f.active_at(Duration::seconds(20)));
}

TEST(Fault, SeverityOrdersDeratingAboveItsMagnitude) {
  // A breaker derating shrinks every planning margin: twice the weight.
  EXPECT_DOUBLE_EQ(
      severity_of(make(FaultKind::kBreakerDerating, 0, 1, 0.2)), 0.4);
  EXPECT_DOUBLE_EQ(
      severity_of(make(FaultKind::kUpsBankOutage, 0, 1, 0.2)), 0.2);
  // Stale sensors are always severe enough to end a sprint (>= 0.5).
  EXPECT_GE(severity_of(make(FaultKind::kSensorStale, 0, 1, 1.0)), 0.5);
  EXPECT_GE(severity_of(make(FaultKind::kGeneratorStartFailure, 0, 1, 1.0)),
            0.5);
}

TEST(Fault, SensorKindsAreSensorFaults) {
  EXPECT_TRUE(is_sensor_fault(FaultKind::kSensorStale));
  EXPECT_TRUE(is_sensor_fault(FaultKind::kSensorDropped));
  EXPECT_TRUE(is_sensor_fault(FaultKind::kSensorNoisy));
  EXPECT_FALSE(is_sensor_fault(FaultKind::kChillerFailure));
}

// ---------------------------------------------------------------------------
// FaultSchedule
// ---------------------------------------------------------------------------

TEST(FaultSchedule, RejectsMalformedFaults) {
  FaultSchedule s;
  // Empty window.
  EXPECT_THROW(s.add(make(FaultKind::kUpsBankOutage, 10, 10, 0.5)),
               std::invalid_argument);
  // Inverted window.
  EXPECT_THROW(s.add(make(FaultKind::kUpsBankOutage, 20, 10, 0.5)),
               std::invalid_argument);
  // Out-of-range magnitudes per kind.
  EXPECT_THROW(s.add(make(FaultKind::kUpsBankOutage, 0, 1, 1.5)),
               std::invalid_argument);
  EXPECT_THROW(s.add(make(FaultKind::kBreakerDerating, 0, 1, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(s.add(make(FaultKind::kBreakerNuisanceBias, 0, 1, -0.1)),
               std::invalid_argument);
  EXPECT_TRUE(s.empty());
  EXPECT_NO_THROW(s.add(make(FaultKind::kChillerDegradedCop, 0, 1, 2.0)));
  EXPECT_EQ(s.size(), 1u);
}

TEST(FaultSchedule, ActivityAndSeverityQueries) {
  FaultSchedule s;
  s.add(make(FaultKind::kUpsBankOutage, 10, 20, 0.3));
  s.add(make(FaultKind::kChillerFailure, 15, 30, 0.8));
  EXPECT_FALSE(s.any_active(Duration::seconds(5)));
  EXPECT_TRUE(s.any_active(Duration::seconds(12)));
  EXPECT_DOUBLE_EQ(s.severity_at(Duration::seconds(12)), 0.3);
  EXPECT_DOUBLE_EQ(s.severity_at(Duration::seconds(16)), 0.8);  // worst wins
  EXPECT_DOUBLE_EQ(s.severity_at(Duration::seconds(40)), 0.0);
}

TEST(FaultSchedule, ScaledMultipliesMagnitudesWithClamping) {
  FaultSchedule s;
  s.add(make(FaultKind::kUpsBankOutage, 0, 10, 0.4));
  s.add(make(FaultKind::kBreakerDerating, 0, 10, 0.10));
  const FaultSchedule half = s.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.faults()[0].magnitude, 0.2);
  EXPECT_DOUBLE_EQ(half.faults()[1].magnitude, 0.05);
  // Scaling far up clamps into each kind's valid range instead of throwing.
  const FaultSchedule big = s.scaled(100.0);
  EXPECT_LE(big.faults()[0].magnitude, 1.0);
  EXPECT_LT(big.faults()[1].magnitude, 1.0);
}

TEST(FaultSchedule, RandomIsDeterministicAndSurvivable) {
  const Duration horizon = Duration::minutes(30);
  const FaultSchedule a = FaultSchedule::random(42, horizon, 1.0);
  const FaultSchedule b = FaultSchedule::random(42, horizon, 1.0);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GE(a.size(), 2u);
  EXPECT_LE(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.faults()[i].kind, b.faults()[i].kind);
    EXPECT_DOUBLE_EQ(a.faults()[i].magnitude, b.faults()[i].magnitude);
    EXPECT_DOUBLE_EQ(a.faults()[i].start.sec(), b.faults()[i].start.sec());
    // Windows stay inside the horizon.
    EXPECT_GE(a.faults()[i].start.sec(), 0.0);
    EXPECT_LE(a.faults()[i].end.sec(), horizon.sec());
    // The survivable pool never draws sensor faults (those blind the
    // controller and void the no-trip guarantee) or start failures.
    EXPECT_FALSE(is_sensor_fault(a.faults()[i].kind));
    EXPECT_NE(a.faults()[i].kind, FaultKind::kGeneratorStartFailure);
  }
  // Different seeds draw different schedules.
  const FaultSchedule c = FaultSchedule::random(43, horizon, 1.0);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.faults()[i].kind != c.faults()[i].kind ||
              a.faults()[i].magnitude != c.faults()[i].magnitude;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, RandomDrawSequenceIndependentOfSeverity) {
  const Duration horizon = Duration::minutes(30);
  const FaultSchedule lo = FaultSchedule::random(7, horizon, 0.25);
  const FaultSchedule hi = FaultSchedule::random(7, horizon, 1.0);
  ASSERT_EQ(lo.size(), hi.size());
  for (std::size_t i = 0; i < lo.size(); ++i) {
    EXPECT_EQ(lo.faults()[i].kind, hi.faults()[i].kind);
    EXPECT_DOUBLE_EQ(lo.faults()[i].start.sec(), hi.faults()[i].start.sec());
    EXPECT_DOUBLE_EQ(lo.faults()[i].end.sec(), hi.faults()[i].end.sec());
    // Severity only scales the magnitude.
    EXPECT_LE(lo.faults()[i].magnitude, hi.faults()[i].magnitude + 1e-12);
  }
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

struct PlantFixture {
  core::DataCenterConfig config = small_config();
  power::PowerTopology topology{config.topology_params()};
  thermal::TesTank tes{"tes", config.tes_params()};
  thermal::CoolingPlant cooling{config.cooling_params(&tes)};
  power::DieselGenerator generator{
      "gen", {.rated = Power::megawatts(8.0),
              .start_delay = Duration::seconds(30)}};

  FaultInjector::Bindings bindings() {
    return {&topology, &cooling, &tes, &generator};
  }
};

TEST(FaultInjector, PushesFaultsIntoComponentsAndRevertsToNeutral) {
  PlantFixture p;
  FaultSchedule s;
  s.add(make(FaultKind::kUpsBankOutage, 10, 20, 0.4));
  s.add(make(FaultKind::kBreakerDerating, 10, 20, 0.1));
  s.add(make(FaultKind::kChillerFailure, 10, 20, 0.5));
  s.add(make(FaultKind::kTesValveStuck, 10, 20, 1.0));
  FaultInjector inj(s, p.bindings());

  inj.apply(Duration::seconds(5));
  EXPECT_EQ(inj.state().active_count, 0u);
  EXPECT_FALSE(inj.ever_active());
  const Power rated = p.topology.pdus().front().breaker().rated();
  const Power max_dis = p.topology.pdus().front().ups().max_discharge();
  const Power cap = p.cooling.thermal_capacity();

  inj.apply(Duration::seconds(15));
  EXPECT_EQ(inj.state().active_count, 4u);
  EXPECT_TRUE(inj.ever_active());
  EXPECT_DOUBLE_EQ(
      p.topology.pdus().front().breaker().effective_rated().w(),
      rated.w() * 0.9);
  EXPECT_DOUBLE_EQ(p.topology.pdus().front().ups().max_discharge().w(),
                   max_dis.w() * 0.6);
  EXPECT_DOUBLE_EQ(p.cooling.thermal_capacity().w(), cap.w() * 0.5);
  EXPECT_DOUBLE_EQ(p.tes.max_discharge_rate().w(), 0.0);

  inj.apply(Duration::seconds(25));
  EXPECT_EQ(inj.state().active_count, 0u);
  EXPECT_TRUE(inj.ever_active());
  EXPECT_DOUBLE_EQ(
      p.topology.pdus().front().breaker().effective_rated().w(), rated.w());
  EXPECT_DOUBLE_EQ(p.topology.pdus().front().ups().max_discharge().w(),
                   max_dis.w());
  EXPECT_DOUBLE_EQ(p.cooling.thermal_capacity().w(), cap.w());
  EXPECT_GT(p.tes.max_discharge_rate().w(), 0.0);
}

TEST(FaultInjector, GeneratorStartFailureBlocksSync) {
  PlantFixture p;
  FaultSchedule s;
  s.add(make(FaultKind::kGeneratorStartFailure, 0, 100, 1.0));
  FaultInjector inj(s, p.bindings());
  inj.apply(Duration::seconds(1));
  p.generator.request_start();
  for (int t = 0; t < 90; ++t) p.generator.tick(Duration::seconds(1));
  EXPECT_FALSE(p.generator.running());
  // The fault clears, the pending start completes.
  inj.apply(Duration::seconds(101));
  p.generator.tick(Duration::seconds(1));
  EXPECT_TRUE(p.generator.running());
}

TEST(FaultInjector, SensorStaleLatchesAndDroppedReadsZero) {
  PlantFixture p;
  FaultSchedule s;
  s.add(make(FaultKind::kSensorStale, 10, 20, 1.0, SensorChannel::kDemand));
  s.add(make(FaultKind::kSensorDropped, 30, 40, 1.0, SensorChannel::kDemand));
  FaultInjector inj(s, p.bindings());

  EXPECT_DOUBLE_EQ(inj.measure(SensorChannel::kDemand, Duration::seconds(5), 2.0),
                   2.0);
  // Stale: latches the last healthy reading for the whole window.
  EXPECT_DOUBLE_EQ(inj.measure(SensorChannel::kDemand, Duration::seconds(12), 3.0),
                   2.0);
  EXPECT_DOUBLE_EQ(inj.measure(SensorChannel::kDemand, Duration::seconds(18), 3.5),
                   2.0);
  // Healthy again.
  EXPECT_DOUBLE_EQ(inj.measure(SensorChannel::kDemand, Duration::seconds(25), 3.0),
                   3.0);
  // Dropped: reads zero.
  EXPECT_DOUBLE_EQ(inj.measure(SensorChannel::kDemand, Duration::seconds(35), 3.0),
                   0.0);
  // Other channels are unaffected.
  EXPECT_DOUBLE_EQ(inj.measure(SensorChannel::kPower, Duration::seconds(35), 0.7),
                   0.7);
}

TEST(FaultInjector, SensorNoiseIsSeededAndNonNegative) {
  PlantFixture p;
  FaultSchedule s;
  s.add(make(FaultKind::kSensorNoisy, 0, 100, 0.2, SensorChannel::kDemand));
  FaultInjector a(s, p.bindings(), 123);
  FaultInjector b(s, p.bindings(), 123);
  FaultInjector c(s, p.bindings(), 456);
  bool seed_differs = false;
  for (int t = 0; t < 50; ++t) {
    const Duration now = Duration::seconds(t);
    const double va = a.measure(SensorChannel::kDemand, now, 2.0);
    const double vb = b.measure(SensorChannel::kDemand, now, 2.0);
    const double vc = c.measure(SensorChannel::kDemand, now, 2.0);
    EXPECT_DOUBLE_EQ(va, vb);
    EXPECT_GE(va, 0.0);
    seed_differs = seed_differs || va != vc;
  }
  EXPECT_TRUE(seed_differs);
}

TEST(FaultInjector, RequiresTopologyAndCooling) {
  PlantFixture p;
  FaultSchedule s;
  s.add(make(FaultKind::kUpsBankOutage, 0, 1, 0.5));
  EXPECT_THROW(FaultInjector(s, {nullptr, &p.cooling, nullptr, nullptr}),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector(s, {&p.topology, nullptr, nullptr, nullptr}),
               std::invalid_argument);
  // TES and generator are optional.
  EXPECT_NO_THROW(FaultInjector(s, {&p.topology, &p.cooling, nullptr, nullptr}));
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(Watchdog, CleanPlantPasses) {
  PlantFixture p;
  const thermal::RoomModel room(p.config.room_params());
  Watchdog dog({.ups_floor = 0.0});
  dog.check(Duration::seconds(1), p.topology, room, &p.tes);
  EXPECT_TRUE(dog.report().ok());
  EXPECT_EQ(dog.report().checks, 1u);
  EXPECT_EQ(dog.report().violations, 0u);
}

TEST(Watchdog, FlagsTrippedBreakerAndOverheatedRoom) {
  PlantFixture p;
  // Overload a PDU breaker hard enough to trip it.
  auto& cb = p.topology.pdus().front().breaker();
  for (int i = 0; i < 600 && !cb.tripped(); ++i) {
    cb.apply_load(cb.rated() * 2.0, Duration::seconds(1));
  }
  ASSERT_TRUE(cb.tripped());

  thermal::RoomModel room(p.config.room_params());
  // Push the room past the threshold.
  for (int i = 0; i < 15; ++i) {
    room.step(Power::megawatts(20.0), Power::megawatts(10.0),
              Duration::minutes(1));
  }
  ASSERT_TRUE(room.over_threshold());

  Watchdog dog({.ups_floor = 0.0});
  dog.check(Duration::seconds(7), p.topology, room, &p.tes);
  EXPECT_FALSE(dog.report().ok());
  // One tripped breaker + one overheated room = two violations this tick.
  EXPECT_EQ(dog.report().violations, 2u);
  EXPECT_EQ(dog.report().first_time.sec(), 7.0);
  EXPECT_NE(dog.report().first_message.find("breaker"), std::string::npos);

  // Disabling the breaker and room checks (uncontrolled baseline) passes.
  Watchdog lax({.ups_floor = 0.0, .check_breakers = false, .check_room = false});
  lax.check(Duration::seconds(7), p.topology, room, &p.tes);
  EXPECT_TRUE(lax.report().ok());
}

TEST(Watchdog, FlagsUpsBelowReserveFloor) {
  PlantFixture p;
  const thermal::RoomModel room(p.config.room_params());
  auto& bank = p.topology.pdus().front().ups();
  // Drain the bank fully (the default reserve floor is 0, so discharge all
  // the way down), then demand a 0.5 floor.
  for (int i = 0; i < 10000 && bank.soc() > 0.4; ++i) {
    (void)bank.discharge(bank.max_discharge(), Duration::seconds(1));
  }
  ASSERT_LT(bank.soc(), 0.4);
  Watchdog dog({.ups_floor = 0.5});
  dog.check(Duration::seconds(3), p.topology, room, &p.tes);
  EXPECT_FALSE(dog.report().ok());
  EXPECT_NE(dog.report().first_message.find("SoC"), std::string::npos);
}

}  // namespace
}  // namespace dcs::faults
