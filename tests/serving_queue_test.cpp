// Request-level serving layer: Poisson arrival sampling, the log latency
// histogram, the M/G/1 and processor-sharing queue models against their
// closed forms, placement policies, admission drops, and the bit-identity
// contract (same inputs -> same histograms and sweep rows, regardless of
// thread count).
#include "serving/serving_layer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/sweep.h"
#include "obs/metrics.h"
#include "serving/latency.h"
#include "serving/placement.h"
#include "serving/queue_model.h"
#include "serving/request_source.h"
#include "util/rng.h"
#include "util/time_series.h"

namespace dcs::serving {
namespace {

TEST(ServingPoisson, SamplerMatchesMeanAndVariance) {
  Rng rng(42);
  EXPECT_EQ(poisson_sample(rng, 0.0), 0u);

  // Small mean (single Knuth chunk) and large mean (chunked path, where a
  // naive exp(-mean) product would underflow to an infinite loop).
  for (const double mean : {3.0, 40.0, 400.0}) {
    const std::size_t n = 20000;
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto k = static_cast<double>(poisson_sample(rng, mean));
      sum += k;
      sum_sq += k * k;
    }
    const double sample_mean = sum / static_cast<double>(n);
    const double sample_var =
        sum_sq / static_cast<double>(n) - sample_mean * sample_mean;
    // Poisson: mean == variance == lambda. 5 sigma-ish tolerances.
    EXPECT_NEAR(sample_mean, mean, 5.0 * std::sqrt(mean / n)) << mean;
    EXPECT_NEAR(sample_var, mean, 0.1 * mean + 1.0) << mean;
  }
}

TEST(ServingPoisson, RequestSourceIsAPureFunctionOfSeedAndTick) {
  const RequestSource a(RequestSourceParams{400.0, 0xABCD});
  const RequestSource b(RequestSourceParams{400.0, 0xABCD});
  const RequestSource other(RequestSourceParams{400.0, 0xABCE});
  const Duration dt = Duration::seconds(1);
  bool any_diff = false;
  for (std::uint64_t tick = 0; tick < 64; ++tick) {
    // Same (seed, tick, demand) -> same count, on the same instance and
    // across instances; re-asking does not advance hidden state.
    const std::size_t n = a.arrivals(tick, 1.0, dt);
    EXPECT_EQ(n, a.arrivals(tick, 1.0, dt));
    EXPECT_EQ(n, b.arrivals(tick, 1.0, dt));
    any_diff = any_diff || n != other.arrivals(tick, 1.0, dt);
  }
  EXPECT_TRUE(any_diff) << "different seeds must give different streams";
  EXPECT_EQ(a.arrivals(0, 0.0, dt), 0u);
}

TEST(ServingHistogram, BucketsQuantilesAndMerge) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);  // empty

  // 100 samples at 10 ms, 10 at 1 s: p50 lands in the 10 ms bucket, p999
  // in the 1 s bucket (within one log-bucket of resolution).
  for (int i = 0; i < 100; ++i) h.observe(0.010);
  for (int i = 0; i < 10; ++i) h.observe(1.0);
  EXPECT_EQ(h.count(), 110u);
  EXPECT_NEAR(h.sum_seconds(), 100 * 0.010 + 10 * 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 1.0);
  const double step = std::pow(10.0, 1.0 / LatencyHistogram::kPerDecade);
  EXPECT_NEAR(h.quantile(0.5), 0.010, 0.010 * (step - 1.0) * 1.01);
  EXPECT_NEAR(h.quantile(0.999), 1.0, 1.0 * (step - 1.0) * 1.01);

  // Underflow and overflow resolve to the histogram edges.
  LatencyHistogram edges;
  edges.observe(1e-6);
  edges.observe(5000.0);
  EXPECT_DOUBLE_EQ(edges.quantile(0.25), LatencyHistogram::kMinSeconds);
  EXPECT_DOUBLE_EQ(edges.quantile(1.0), LatencyHistogram::kMaxSeconds);
  edges.observe(std::nan(""));  // guarded, lands in underflow
  EXPECT_EQ(edges.count(), 3u);

  // merge(a, b) == observing the union. Dyadic sample values keep the
  // sum_seconds fold exact in any order (operator== compares it exactly).
  LatencyHistogram a, b, both;
  for (int i = 0; i < 50; ++i) {
    const double s = 0.25 * (1 + i % 7);
    (i % 2 == 0 ? a : b).observe(s);
    both.observe(s);
  }
  a.merge(b);
  EXPECT_TRUE(a == both);
  b.reset();
  EXPECT_EQ(b.count(), 0u);
}

TEST(ServingTracker, WindowP99FallsBackToLastCompletedWindow) {
  LatencyTracker tracker(/*window_ticks=*/2);
  tracker.observe(0.100);
  tracker.observe(0.100);
  EXPECT_GT(tracker.window_p99(), 0.0);  // current window has samples
  tracker.end_tick();
  tracker.end_tick();  // window completes; snapshot taken, window resets
  const double snapshot = tracker.window_p99();
  EXPECT_GT(snapshot, 0.05);  // falls back to the completed window's p99
  // An empty current window keeps reporting the last completed one.
  tracker.end_tick();
  EXPECT_DOUBLE_EQ(tracker.window_p99(), snapshot);

  obs::MetricsRegistry registry;
  tracker.export_metrics(registry, "serving_");
  EXPECT_DOUBLE_EQ(registry.counter("serving_requests_total").value(), 2.0);
  EXPECT_GT(registry.gauge("serving_p99_ms").value(), 0.0);
  // Re-export must not double-count the counter.
  tracker.export_metrics(registry, "serving_");
  EXPECT_DOUBLE_EQ(registry.counter("serving_requests_total").value(), 2.0);
}

/// Drives a queue with a deterministic `arrivals` per tick for `ticks`
/// periods and returns the tracker.
LatencyTracker drive(QueueModel& queue, std::size_t arrivals, double mu,
                     std::size_t ticks, std::uint64_t seed) {
  LatencyTracker tracker;
  const Rng base(seed);
  for (std::size_t t = 0; t < ticks; ++t) {
    Rng rng = base.fork(t);
    queue.step(arrivals, mu, Duration::seconds(1), rng, tracker);
    tracker.end_tick();
  }
  return tracker;
}

TEST(ServingQueue, Mg1MatchesPollaczekKhinchineMean) {
  // M/M/1 case (cv2 = 1): W = 1/mu + lambda/(mu^2 (1 - rho)).
  for (const double cv2 : {1.0, 0.0, 4.0}) {
    Mg1Queue queue(QueueModelParams{cv2, 0.95});
    const LatencyTracker t = drive(queue, /*arrivals=*/50, /*mu=*/100.0,
                                   /*ticks=*/2000, /*seed=*/7);
    const double expected = mg1_mean_response_s(50.0, 100.0, cv2);
    // 100k exponential samples: relative standard error ~0.3%.
    EXPECT_NEAR(t.total().mean_seconds(), expected, 0.05 * expected) << cv2;
    EXPECT_DOUBLE_EQ(queue.backlog(), 0.0);
  }
  // Closed form sanity: the M/M/1 mean at rho=0.5 is 2/mu.
  EXPECT_NEAR(mg1_mean_response_s(50.0, 100.0, 1.0), 0.02, 1e-12);
}

TEST(ServingQueue, ProcessorSharingMatchesClosedFormAndIgnoresCv2) {
  ProcessorSharingQueue queue(QueueModelParams{1.0, 0.95});
  const LatencyTracker t = drive(queue, 50, 100.0, 2000, 7);
  const double expected = ps_mean_response_s(50.0, 100.0);  // 1/(mu-lambda)
  EXPECT_NEAR(t.total().mean_seconds(), expected, 0.05 * expected);

  // PS is insensitive to the service-time distribution beyond its mean: a
  // different cv2 with the same seed produces a bit-identical histogram.
  ProcessorSharingQueue other(QueueModelParams{4.0, 0.95});
  const LatencyTracker u = drive(other, 50, 100.0, 2000, 7);
  EXPECT_TRUE(t.total() == u.total());

  // Exponential response shape: p99/mean ~ ln(100), read through the log
  // histogram's ~15% bucket resolution.
  EXPECT_NEAR(t.p99() / t.total().mean_seconds(), std::log(100.0), 1.0);
}

TEST(ServingQueue, FluidOverloadIsDeterministicAndMonotoneInMu) {
  // arrivals > mu * dt: the fluid regime, no sampling at all.
  Mg1Queue queue;
  LatencyTracker tracker;
  Rng rng(1);
  queue.step(200, 100.0, Duration::seconds(1), rng, tracker);
  EXPECT_DOUBLE_EQ(queue.backlog(), 100.0);  // 200 in, 100 served
  // First request waits 1/mu, last waits (199+1)/mu = 2 s.
  EXPECT_DOUBLE_EQ(tracker.total().max_seconds(), 2.0);

  // The backlog drains at mu when arrivals stop — step() with zero
  // arrivals must keep integrating.
  queue.step(0, 100.0, Duration::seconds(1), rng, tracker);
  EXPECT_DOUBLE_EQ(queue.backlog(), 0.0);

  // More capacity (a deeper sprint) means strictly lower response times —
  // the monotonicity behind the p99-vs-budget curves.
  double prev_mean = 1e9;
  for (const double mu : {100.0, 150.0, 200.0}) {
    Mg1Queue q;
    const LatencyTracker t = drive(q, 180, mu, 50, 3);
    EXPECT_LT(t.total().mean_seconds(), prev_mean) << mu;
    prev_mean = t.total().mean_seconds();
  }

  // mu = 0 (fully shed server): requests pend and saturate the histogram.
  Mg1Queue dead;
  LatencyTracker sat;
  dead.step(5, 0.0, Duration::seconds(1), rng, sat);
  EXPECT_DOUBLE_EQ(dead.backlog(), 5.0);
  EXPECT_DOUBLE_EQ(sat.total().max_seconds(), LatencyHistogram::kMaxSeconds);
  dead.reset();
  EXPECT_DOUBLE_EQ(dead.backlog(), 0.0);
}

TEST(ServingQueue, FactoryValidatesNamesAndParams) {
  EXPECT_EQ(make_queue_model("mg1")->name(), "mg1");
  EXPECT_EQ(make_queue_model("ps")->name(), "ps");
  EXPECT_THROW((void)make_queue_model("lifo"), std::invalid_argument);
  EXPECT_THROW((void)make_queue_model("mg1", {-1.0, 0.95}),
               std::invalid_argument);
  EXPECT_THROW((void)make_queue_model("mg1", {1.0, 1.5}),
               std::invalid_argument);
}

TEST(ServingPlacement, PoliciesPickDeterministically) {
  const auto loads = [](std::initializer_list<ServerLoad> l) {
    return std::vector<ServerLoad>(l);
  };

  RoundRobinPlacement rr;
  const auto three = loads({{0, 0, 0}, {0, 0, 0}, {0, 0, 0}});
  EXPECT_EQ(rr.pick(three), 0u);
  EXPECT_EQ(rr.pick(three), 1u);
  EXPECT_EQ(rr.pick(three), 2u);
  EXPECT_EQ(rr.pick(three), 0u);
  rr.reset();
  EXPECT_EQ(rr.pick(three), 0u);

  JoinShortestQueuePlacement jsq;
  EXPECT_EQ(jsq.pick(loads({{2.0, 0, 0}, {0.0, 0, 0}, {1.0, 0, 0}})), 1u);
  // Requests already assigned this period count toward the queue.
  EXPECT_EQ(jsq.pick(loads({{0.0, 0, 1}, {0.0, 0, 0}})), 1u);
  EXPECT_EQ(jsq.pick(loads({{1.0, 0, 0}, {1.0, 0, 0}})), 0u);  // tie: lowest

  ThermalAwarePlacement thermal;
  EXPECT_EQ(thermal.pick(loads({{0.0, 0.5, 0}, {9.0, 0.1, 0}})), 1u);
  // Equal heat: fall back to the shorter queue.
  EXPECT_EQ(thermal.pick(loads({{5.0, 0.1, 0}, {1.0, 0.1, 0}})), 1u);

  EXPECT_THROW((void)make_placement("random"), std::invalid_argument);
  EXPECT_EQ(make_placement("thermal")->name(), "thermal");
}

/// A short overloaded demand trace for the layer-level tests.
TimeSeries burst_trace() {
  TimeSeries t;
  t.push_back(Duration::zero(), 0.6);
  t.push_back(Duration::seconds(60), 1.8);
  t.push_back(Duration::seconds(200), 1.8);
  t.push_back(Duration::seconds(240), 0.5);
  t.push_back(Duration::seconds(300), 0.5);
  return t;
}

/// Runs a ServingLayer over the burst trace at a fixed capacity degree.
ServingLayer run_layer(const TimeSeries& trace, ServingParams params,
                       double degree) {
  params.demand = &trace;
  ServingLayer layer(params);
  layer.set_capacity_degree(degree);
  const Duration dt = Duration::seconds(1);
  for (Duration now = Duration::zero(); now < trace.end_time(); now += dt) {
    layer.tick(now, dt);
  }
  return layer;
}

TEST(ServingLayer, AdmissionDropsBeyondCapacityHeadroom) {
  const TimeSeries trace = burst_trace();
  ServingParams tight;
  tight.admit_factor = 1.0;  // no queueing headroom
  const ServingLayer capped = run_layer(trace, tight, 1.0);
  EXPECT_GT(capped.dropped_total(), 0u);
  EXPECT_GT(capped.drop_fraction(), 0.0);
  EXPECT_GT(capped.offered_total(), capped.dropped_total());

  // More admission headroom admits more (queueing instead of dropping),
  // which buys a lower drop rate at the cost of latency.
  ServingParams loose;
  loose.admit_factor = 4.0;
  const ServingLayer queued = run_layer(trace, loose, 1.0);
  EXPECT_LT(queued.drop_fraction(), capped.drop_fraction());
  EXPECT_GE(queued.latency().p99(), capped.latency().p99());

  obs::MetricsRegistry registry;
  capped.export_metrics(registry);
  EXPECT_DOUBLE_EQ(registry.counter("serving_offered_total").value(),
                   static_cast<double>(capped.offered_total()));
  EXPECT_GT(registry.gauge("serving_drop_fraction").value(), 0.0);
}

TEST(ServingLayer, MoreCapacityMeansLowerTail) {
  const TimeSeries trace = burst_trace();
  const ServingLayer base = run_layer(trace, {}, 1.0);
  const ServingLayer sprinted = run_layer(trace, {}, 2.0);
  // Same arrival stream (same seed), twice the service rate: the tail must
  // come down. This is the serving-side mechanism fig12 sweeps.
  EXPECT_LT(sprinted.latency().p99(), base.latency().p99());
  EXPECT_LE(sprinted.backlog_total(), base.backlog_total());
}

TEST(ServingLayer, HistogramsAreBitIdenticalAcrossRuns) {
  const TimeSeries trace = burst_trace();
  for (const char* model : {"mg1", "ps"}) {
    for (const char* placement : {"round_robin", "jsq", "thermal"}) {
      ServingParams params;
      params.queue_model = model;
      params.placement = placement;
      const ServingLayer a = run_layer(trace, params, 1.5);
      const ServingLayer b = run_layer(trace, params, 1.5);
      EXPECT_TRUE(a.latency().total() == b.latency().total())
          << model << "/" << placement;
      EXPECT_EQ(a.offered_total(), b.offered_total());
      EXPECT_EQ(a.dropped_total(), b.dropped_total());
    }
  }
}

TEST(ServingLayer, SweepRowsBitIdenticalAcrossThreadCounts) {
  const TimeSeries trace = burst_trace();
  exp::SweepSpec spec("serving_determinism");
  spec.add_axis("model", std::vector<std::string>{"mg1", "ps"});
  spec.add_axis("admit", std::vector<double>{1.0, 2.0, 4.0}, 0);

  const auto task = [&trace](const exp::SweepSpec::Task& t) {
    ServingParams params;
    params.queue_model = t.level[0] == 0 ? "mg1" : "ps";
    params.admit_factor = std::vector<double>{1.0, 2.0, 4.0}[t.level[1]];
    const ServingLayer layer = run_layer(trace, params, 1.2);
    return std::vector<double>{layer.latency().p50(), layer.latency().p99(),
                               layer.drop_fraction(), layer.backlog_total()};
  };
  const std::vector<std::string> metrics{"p50", "p99", "drop", "backlog"};

  exp::RunnerOptions serial;
  serial.threads = 1;
  exp::RunnerOptions parallel;
  parallel.threads = 4;
  const exp::SweepRun a = exp::run_sweep(spec, metrics, task, serial);
  const exp::SweepRun b = exp::run_sweep(spec, metrics, task, parallel);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i], b.rows[i]) << "task " << i;
  }
}

TEST(ServingLayer, SloCallbackSeesWindowP99AndRecorderChannels) {
  const TimeSeries trace = burst_trace();
  ServingParams params;
  params.demand = &trace;
  ServingLayer layer(params);
  layer.set_capacity_degree(1.0);

  sim::Recorder recorder;
  layer.set_recorder(&recorder);
  std::size_t callbacks = 0;
  double max_p99 = 0.0;
  layer.set_slo_callback([&](const ServingStats& stats) {
    ++callbacks;
    max_p99 = std::max(max_p99, stats.p99_s);
    EXPECT_EQ(stats.offered, stats.admitted + stats.dropped);
  });

  const Duration dt = Duration::seconds(1);
  std::size_t ticks = 0;
  for (Duration now = Duration::zero(); now < trace.end_time(); now += dt) {
    layer.tick(now, dt);
    ++ticks;
  }
  EXPECT_EQ(callbacks, ticks);
  EXPECT_GT(max_p99, 0.0);
  for (const char* channel :
       {"serving_p50_ms", "serving_p99_ms", "serving_p999_ms",
        "serving_window_p99_ms", "serving_backlog", "serving_dropped",
        "serving_admitted"}) {
    ASSERT_TRUE(recorder.has(channel)) << channel;
    EXPECT_EQ(recorder.series(channel).size(), ticks) << channel;
  }

  // Parameter validation.
  EXPECT_THROW((void)ServingLayer(ServingParams{}), std::invalid_argument);
  ServingParams bad;
  bad.demand = &trace;
  bad.servers = 0;
  EXPECT_THROW((void)ServingLayer(bad), std::invalid_argument);
}

}  // namespace
}  // namespace dcs::serving
