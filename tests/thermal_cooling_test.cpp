#include "thermal/cooling_plant.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

namespace dcs::thermal {
namespace {

class CoolingTest : public ::testing::Test {
 protected:
  CoolingTest()
      : tes_("tes", {.capacity = Power::megawatts(10) * Duration::minutes(12)}),
        plant_({.nominal_it_load = Power::megawatts(10), .tes = &tes_}) {}

  TesTank tes_;
  CoolingPlant plant_;
  const Duration dt_ = Duration::seconds(1);
};

TEST_F(CoolingTest, SteadyStateElectricalMatchesPue) {
  // PUE 1.53: cooling power = 0.53 x IT power at nominal load.
  EXPECT_NEAR(plant_.electrical_for(Power::megawatts(10)).mw(), 5.3, 1e-9);
  EXPECT_NEAR(plant_.nominal_electrical().mw(), 5.3, 1e-9);
}

TEST_F(CoolingTest, NominalStepAbsorbsAllHeat) {
  const CoolingStep s = plant_.step(Power::megawatts(10), false, Power::zero(), dt_);
  EXPECT_NEAR(s.heat_absorbed.mw(), 10.0, 1e-9);
  EXPECT_NEAR(s.electrical.mw(), 5.3, 1e-9);
  EXPECT_FALSE(s.tes_active);
  EXPECT_DOUBLE_EQ(s.tes_heat.w(), 0.0);
}

TEST_F(CoolingTest, SprintHeatCapsAtChillerCapacity) {
  // 20 MW of IT heat but the chiller was sized for 10 MW.
  const CoolingStep s = plant_.step(Power::megawatts(20), false, Power::zero(), dt_);
  EXPECT_NEAR(s.heat_absorbed.mw(), 10.0, 1e-9);
  // Chiller power does not rise above nominal either.
  EXPECT_NEAR(s.electrical.mw(), 5.3, 1e-9);
}

TEST_F(CoolingTest, PartialLoadScalesChillerPower) {
  const CoolingStep s = plant_.step(Power::megawatts(5), false, Power::zero(), dt_);
  EXPECT_NEAR(s.heat_absorbed.mw(), 5.0, 1e-9);
  // Aux third is fixed; chiller two-thirds scales with load.
  const double aux = 5.3 / 3.0;
  const double chiller = 5.3 * (2.0 / 3.0) * 0.5;
  EXPECT_NEAR(s.electrical.mw(), aux + chiller, 1e-9);
}

TEST_F(CoolingTest, TesAbsorbsExcessHeat) {
  const CoolingStep s = plant_.step(Power::megawatts(20), true, Power::zero(), dt_);
  EXPECT_NEAR(s.heat_absorbed.mw(), 20.0, 1e-9);
  EXPECT_NEAR(s.tes_heat.mw(), 10.0, 1e-9);
  EXPECT_TRUE(s.tes_active);
  // No relief requested: chiller keeps its nominal draw.
  EXPECT_NEAR(s.electrical.mw(), 5.3, 1e-9);
}

TEST_F(CoolingTest, TesReliefDisplacesChillerPower) {
  const Power relief = Power::megawatts(1);
  const CoolingStep s = plant_.step(Power::megawatts(20), true, relief, dt_);
  EXPECT_NEAR(s.relief.mw(), 1.0, 1e-9);
  EXPECT_NEAR(s.electrical.mw(), 5.3 - 1.0, 1e-9);
  // Displaced chiller heat moved to the TES on top of the excess.
  EXPECT_GT(s.tes_heat.mw(), 10.0);
  // Total heat absorbed is unchanged: the room does not care who cools it.
  EXPECT_NEAR(s.heat_absorbed.mw(), 20.0, 1e-9);
}

TEST_F(CoolingTest, ReliefClampsAtFullChiller) {
  // Request more relief than the chiller draws: saves at most 2/3 of
  // cooling power (the paper's "up to 2/3" [16]).
  const CoolingStep s =
      plant_.step(Power::megawatts(10), true, Power::megawatts(100), dt_);
  EXPECT_NEAR(s.relief.mw(), 5.3 * 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.electrical.mw(), 5.3 / 3.0, 1e-9);  // pumps/fans remain
}

TEST_F(CoolingTest, EmptyTankFallsBackToChiller) {
  // Drain the tank.
  while (tes_.discharge(Power::megawatts(100), Duration::seconds(10)) > Power::zero()) {
  }
  const CoolingStep s = plant_.step(Power::megawatts(20), true, Power::zero(), dt_);
  EXPECT_FALSE(s.tes_active);
  EXPECT_NEAR(s.heat_absorbed.mw(), 10.0, 1e-9);
}

TEST_F(CoolingTest, ShortTankCoversExcessBeforeRelief) {
  // Leave just enough charge for half the excess of one step.
  while (tes_.stored() > Energy::joules(5e6)) {
    tes_.discharge(Power::megawatts(100), Duration::seconds(1));
  }
  const CoolingStep s =
      plant_.step(Power::megawatts(20), true, Power::megawatts(2), dt_);
  // Everything the tank had went to the excess, none to relief.
  EXPECT_DOUBLE_EQ(s.relief.w(), 0.0);
  EXPECT_LE(s.tes_heat.mw(), 10.0 + 1e-9);
}

TEST_F(CoolingTest, ProjectionMatchesStep) {
  for (double it_mw : {4.0, 10.0, 18.0, 26.0}) {
    for (bool tes : {false, true}) {
      for (double relief_mw : {0.0, 0.5, 2.0}) {
        TesTank tank("t", {.capacity = Power::megawatts(10) * Duration::minutes(12)});
        CoolingPlant plant({.nominal_it_load = Power::megawatts(10), .tes = &tank});
        const Power projected = plant.electrical_projection(
            Power::megawatts(it_mw), tes, Power::megawatts(relief_mw));
        const CoolingStep s = plant.step(Power::megawatts(it_mw), tes,
                                         Power::megawatts(relief_mw), dt_);
        EXPECT_NEAR(projected.w(), s.electrical.w(), 1.0)
            << "it=" << it_mw << " tes=" << tes << " relief=" << relief_mw;
      }
    }
  }
}

TEST_F(CoolingTest, RechargeStoresSpareThermalOutput) {
  tes_.discharge(Power::megawatts(10), Duration::minutes(6));
  const Energy before = tes_.stored();
  const CoolingStep s =
      plant_.recharge_tes_step(Power::megawatts(4), Power::megawatts(3), dt_);
  EXPECT_NEAR((tes_.stored() - before).j(), 3e6, 1.0);
  // Extra electrical beyond serving the 4 MW IT load.
  const Power base = plant_.electrical_projection(Power::megawatts(4), false,
                                                  Power::zero());
  EXPECT_GT(s.electrical, base);
}

TEST_F(CoolingTest, RechargeLimitedBySpareCapacity) {
  tes_.discharge(Power::megawatts(10), Duration::minutes(6));
  const Energy before = tes_.stored();
  // IT at capacity: no spare chiller output to store.
  plant_.recharge_tes_step(Power::megawatts(10), Power::megawatts(5), dt_);
  EXPECT_DOUBLE_EQ((tes_.stored() - before).j(), 0.0);
}

TEST(CoolingPlant, WorksWithoutTes) {
  CoolingPlant plant({.nominal_it_load = Power::megawatts(10)});
  EXPECT_FALSE(plant.has_tes());
  const CoolingStep s = plant.step(Power::megawatts(20), true, Power::megawatts(1),
                                   Duration::seconds(1));
  EXPECT_FALSE(s.tes_active);
  EXPECT_NEAR(s.heat_absorbed.mw(), 10.0, 1e-9);
}

TEST(CoolingPlant, Validation) {
  EXPECT_THROW((void)CoolingPlant({.pue = 1.0, .nominal_it_load = Power::watts(1)}),
               std::invalid_argument);
  EXPECT_THROW((void)CoolingPlant({.chiller_fraction = 1.0,
                             .nominal_it_load = Power::watts(1)}),
               std::invalid_argument);
  EXPECT_THROW((void)CoolingPlant({.nominal_it_load = Power::zero()}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcs::thermal
