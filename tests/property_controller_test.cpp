// Parameterized end-to-end sweeps: every controller mode against every
// workload family and several infrastructure variants, checking the global
// safety and sanity invariants (DESIGN.md §6).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>

#include "core/datacenter.h"
#include "util/rng.h"
#include "workload/ms_trace.h"
#include "workload/yahoo_trace.h"

namespace dcs::core {
namespace {

TimeSeries make_trace(const std::string& which) {
  if (which == "ms") return workload::generate_ms_trace();
  if (which == "yahoo-short") {
    workload::YahooTraceParams p;
    p.burst_degree = 3.4;
    p.burst_duration = Duration::minutes(3);
    return workload::generate_yahoo_trace(p);
  }
  workload::YahooTraceParams p;
  p.burst_degree = 3.0;
  p.burst_duration = Duration::minutes(15);
  return workload::generate_yahoo_trace(p);
}

DataCenterConfig make_config(const std::string& variant) {
  DataCenterConfig c;
  c.fleet.pdu_count = 2;
  if (variant == "no-tes") c.has_tes = false;
  if (variant == "tight") {
    c.dc_headroom = 0.0;
    c.battery_per_server.capacity = Charge::amp_hours(0.25);
    c.tes_capacity_minutes = 6.0;
  }
  if (variant == "roomy") {
    c.dc_headroom = 0.20;
    c.battery_per_server.capacity = Charge::amp_hours(1.0);
    c.tes_capacity_minutes = 24.0;
  }
  return c;
}

using ModeMatrix = std::tuple<Mode, std::string /*trace*/, std::string /*cfg*/>;

class ModeSweep : public ::testing::TestWithParam<ModeMatrix> {};

TEST_P(ModeSweep, GlobalInvariants) {
  const auto& [mode, trace_name, cfg_name] = GetParam();
  DataCenter dc(make_config(cfg_name));
  const TimeSeries trace = make_trace(trace_name);
  GreedyStrategy greedy;
  Strategy* strategy = mode == Mode::kControlled ? &greedy : nullptr;
  const RunResult r = dc.run(trace, strategy, {.mode = mode, .record = true});

  // Achieved is capped by demand at every tick and bounded overall.
  const TimeSeries& demand = r.recorder.series("demand");
  const TimeSeries& achieved = r.recorder.series("achieved");
  for (std::size_t i = 0; i < demand.size(); ++i) {
    ASSERT_LE(achieved[i].value, demand[i].value + 1e-9);
    ASSERT_GE(achieved[i].value, 0.0);
  }

  // Stored-state bounds.
  EXPECT_GE(r.min_ups_soc, -1e-12);
  EXPECT_LE(r.min_ups_soc, 1.0 + 1e-12);
  EXPECT_GE(r.min_tes_soc, -1e-12);

  if (mode == Mode::kUncontrolled) {
    // The uncontrolled baseline may trip; everything else must not.
    return;
  }
  EXPECT_FALSE(r.tripped) << to_string(mode);
  EXPECT_LT(r.recorder.series("dc_cb_heat").max_value(), 1.0);
  EXPECT_LT(r.recorder.series("pdu_cb_heat").max_value(), 1.0);
  EXPECT_GE(r.performance_factor, 1.0 - 1e-9) << to_string(mode);
  // Controlled / capped modes never take the room past the threshold.
  EXPECT_LE(r.peak_room_temperature.c(), 35.0 + 1e-9);

  if (mode == Mode::kNoSprint) {
    EXPECT_NEAR(r.performance_factor, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(r.ups_energy.j(), 0.0);
  }
  if (mode == Mode::kPowerCapped || mode == Mode::kDvfsCapped) {
    // Capping uses no stored energy.
    EXPECT_DOUBLE_EQ(r.ups_energy.j(), 0.0);
    EXPECT_DOUBLE_EQ(r.tes_saved_energy.j(), 0.0);
  }
  if (mode == Mode::kControlled) {
    EXPECT_GT(r.performance_factor, 1.05) << trace_name << " " << cfg_name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ModeSweep,
    ::testing::Combine(::testing::Values(Mode::kControlled, Mode::kNoSprint,
                                         Mode::kPowerCapped, Mode::kDvfsCapped,
                                         Mode::kUncontrolled),
                       ::testing::Values("ms", "yahoo-short", "yahoo-long"),
                       ::testing::Values("default", "no-tes", "tight", "roomy")),
    [](const ::testing::TestParamInfo<ModeMatrix>& info) {
      std::string name{to_string(std::get<0>(info.param))};
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      std::string trace = std::get<1>(info.param);
      for (char& c : trace) {
        if (c == '-') c = '_';
      }
      std::string cfg = std::get<2>(info.param);
      for (char& c : cfg) {
        if (c == '-') c = '_';
      }
      return name + "_" + trace + "_" + cfg;
    });

// ---------------------------------------------------------------------------
// Cross-mode dominance: on every workload/config, controlled sprinting
// weakly dominates both capping baselines.
// ---------------------------------------------------------------------------

using DomParams = std::tuple<std::string /*trace*/, std::string /*cfg*/>;

class Dominance : public ::testing::TestWithParam<DomParams> {};

TEST_P(Dominance, SprintingDominatesCapping) {
  const auto& [trace_name, cfg_name] = GetParam();
  DataCenter dc(make_config(cfg_name));
  const TimeSeries trace = make_trace(trace_name);
  GreedyStrategy greedy;
  const double sprint = dc.run(trace, &greedy).performance_factor;
  const double core_cap =
      dc.run(trace, nullptr, {.mode = Mode::kPowerCapped}).performance_factor;
  const double dvfs_cap =
      dc.run(trace, nullptr, {.mode = Mode::kDvfsCapped}).performance_factor;
  EXPECT_GE(sprint, core_cap - 1e-9);
  EXPECT_GE(core_cap, dvfs_cap - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Dominance,
    ::testing::Combine(::testing::Values("ms", "yahoo-short", "yahoo-long"),
                       ::testing::Values("default", "tight", "roomy")));

// ---------------------------------------------------------------------------
// Fuzz: random demand walks plus random supply dips, per seed. The
// controlled sprint must stay safe whatever the workload does.
// ---------------------------------------------------------------------------

class ControllerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ControllerFuzz, RandomDemandAndSupplyStaySafe) {
  Rng rng(GetParam());
  // Bounded random walk in [0, 4] with occasional jumps.
  TimeSeries demand;
  double level = rng.uniform(0.2, 1.0);
  for (int s = 0; s <= 1800; s += 5) {
    if (rng.uniform() < 0.02) {
      level = rng.uniform(0.2, 4.0);  // burst arrival / departure
    } else {
      level += rng.normal(0.0, 0.05);
    }
    level = std::clamp(level, 0.05, 4.0);
    demand.push_back(Duration::seconds(s), level);
  }
  // One random supply dip.
  TimeSeries supply;
  const double dip_start = rng.uniform(120.0, 1200.0);
  const double dip_level = rng.uniform(0.4, 0.95);
  supply.push_back(Duration::zero(), 1.0);
  supply.push_back(Duration::seconds(dip_start), dip_level);
  supply.push_back(Duration::seconds(dip_start + rng.uniform(30.0, 300.0)), 1.0);
  supply.push_back(Duration::seconds(1800), 1.0);

  DataCenterConfig config = make_config("default");
  DataCenter dc(config);
  GreedyStrategy greedy;
  const RunResult r = dc.run(demand, &greedy,
                             {.record = true, .supply_fraction = &supply});
  EXPECT_FALSE(r.tripped);
  EXPECT_GE(r.performance_factor, 1.0 - 1e-9);
  EXPECT_LE(r.peak_room_temperature.c(), 35.0 + 1e-9);
  EXPECT_LT(r.recorder.series("dc_cb_heat").max_value(), 1.0);
  EXPECT_GE(r.min_ups_soc, -1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace dcs::core
