// Worker telemetry streams: crash-safe JSONL schema, the incremental tail
// the dispatcher supervises with, and the torn-trailing-line tolerance both
// sides rely on when workers die mid-write.
#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/json.h"

namespace dcs::obs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<json::Value> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<json::Value> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(json::parse(line));
  return lines;
}

TraceEvent instant_at(double ts_us, const std::string& name) {
  TraceEvent e;
  e.phase = 'i';
  e.ts_us = ts_us;
  e.cat = "test";
  e.name = name;
  return e;
}

TEST(ObsTelemetry, StreamCarriesHeaderEventsMetricsStacksAndEndMarker) {
  const std::string path = temp_path("telemetry_full.jsonl");
  TelemetryOptions options;
  options.name = "unit";
  options.shard = "1/4";
  {
    TelemetrySink sink(path, options);
    ASSERT_TRUE(sink.ok());
    sink.write_lane_name(Domain::kSim, 0, "lane-zero");
    sink.write(instant_at(1.0, "first"));
    sink.heartbeat("sweep", 3, 10);
    MetricsRegistry registry;
    registry.counter("rows_total").inc(5.0);
    registry.gauge("margin_s").set(0.25);
    sink.write_metrics(registry);
    sink.write_stacks({{"main;task", 7}});
    EXPECT_EQ(sink.events_written(), 1u);
    sink.close();
  }
  const std::vector<json::Value> lines = read_lines(path);
  ASSERT_GE(lines.size(), 7u);

  // Header first, exactly once, with the cross-process merge anchor.
  EXPECT_EQ(lines[0].at("t").as_string(), "header");
  EXPECT_EQ(lines[0].at("telemetry").as_number(), 1.0);
  EXPECT_EQ(lines[0].at("name").as_string(), "unit");
  EXPECT_EQ(lines[0].at("shard").as_string(), "1/4");
  EXPECT_GT(lines[0].at("pid").as_number(), 0.0);
  EXPECT_EQ(static_cast<std::int64_t>(lines[0].at("epoch_unix_us").as_number()),
            Profiler::instance().epoch_unix_us());

  std::size_t events = 0, lanes = 0, heartbeats = 0, metrics = 0, stacks = 0;
  for (const json::Value& line : lines) {
    const std::string& t = line.at("t").as_string();
    if (t == "ev") {
      ++events;
      EXPECT_EQ(line.at("name").as_string(), "first");
    } else if (t == "lane") {
      ++lanes;
      EXPECT_EQ(line.at("name").as_string(), "lane-zero");
    } else if (t == "hb") {
      ++heartbeats;
      EXPECT_EQ(line.at("done").as_number(), 3.0);
      EXPECT_EQ(line.at("total").as_number(), 10.0);
      EXPECT_GE(line.at("wall_us").as_number(), 0.0);
    } else if (t == "metric") {
      ++metrics;
    } else if (t == "stack") {
      ++stacks;
      EXPECT_EQ(line.at("stack").as_string(), "main;task");
      EXPECT_EQ(line.at("count").as_number(), 7.0);
    }
  }
  EXPECT_EQ(events, 1u);
  EXPECT_EQ(lanes, 1u);
  EXPECT_EQ(heartbeats, 1u);
  EXPECT_EQ(metrics, 2u);
  EXPECT_EQ(stacks, 1u);

  // End marker last: the clean-shutdown signal restarted shards lack.
  EXPECT_EQ(lines.back().at("t").as_string(), "end");
  EXPECT_EQ(lines.back().at("events").as_number(), 1.0);
  std::remove(path.c_str());
}

TEST(ObsTelemetry, CloseIsIdempotentAndSealsTheStream) {
  const std::string path = temp_path("telemetry_close.jsonl");
  TelemetrySink sink(path);
  sink.write(instant_at(1.0, "kept"));
  sink.close();
  sink.close();  // idempotent: one end marker
  sink.write(instant_at(2.0, "dropped"));
  sink.heartbeat("late", 1, 1);
  EXPECT_EQ(sink.events_written(), 1u);
  std::size_t ends = 0;
  bool dropped_seen = false;
  for (const json::Value& line : read_lines(path)) {
    if (line.at("t").as_string() == "end") ++ends;
    const json::Value* name = line.find("name");
    if (name != nullptr && name->is_string() &&
        name->as_string() == "dropped") {
      dropped_seen = true;
    }
  }
  EXPECT_EQ(ends, 1u);
  EXPECT_FALSE(dropped_seen) << "writes after close must be silent no-ops";
  std::remove(path.c_str());
}

TEST(ObsTelemetry, UnwritablePathReportsNotOkAndNeverCrashes) {
  TelemetrySink sink("/nonexistent-dir/telemetry.jsonl");
  EXPECT_FALSE(sink.ok());
  EXPECT_FALSE(sink.healthy());
  sink.write(instant_at(1.0, "dropped"));
  sink.heartbeat("s", 1, 2);
  sink.close();
}

TEST(ObsTelemetry, TailReadsIncrementallyAndTracksHeartbeats) {
  const std::string path = temp_path("telemetry_tail.jsonl");
  std::remove(path.c_str());

  TelemetryTail tail(path);
  EXPECT_FALSE(tail.poll()) << "a missing file is 'no data yet', not an error";
  EXPECT_FALSE(tail.have_header());

  TelemetryOptions options;
  options.name = "tailed";
  options.shard = "0/2";
  TelemetrySink sink(path, options);
  ASSERT_TRUE(sink.ok());
  EXPECT_TRUE(tail.poll());
  EXPECT_TRUE(tail.have_header());
  EXPECT_EQ(tail.name(), "tailed");
  EXPECT_EQ(tail.epoch_unix_us(), Profiler::instance().epoch_unix_us());
  EXPECT_FALSE(tail.have_heartbeat());

  sink.heartbeat("fake", 4, 24);
  EXPECT_TRUE(tail.poll());
  ASSERT_TRUE(tail.have_heartbeat());
  EXPECT_EQ(tail.heartbeat().sweep, "fake");
  EXPECT_EQ(tail.heartbeat().done, 4u);
  EXPECT_EQ(tail.heartbeat().total, 24u);
  EXPECT_FALSE(tail.ended());

  sink.heartbeat("fake", 24, 24);
  sink.write(instant_at(5.0, "tick"));
  sink.close();
  EXPECT_TRUE(tail.poll());
  EXPECT_EQ(tail.heartbeat().done, 24u);
  EXPECT_EQ(tail.events_seen(), 1u);
  EXPECT_TRUE(tail.ended());
  EXPECT_FALSE(tail.poll()) << "nothing new after the end marker";
  std::remove(path.c_str());
}

TEST(ObsTelemetry, TailNeverConsumesATornTrailingLine) {
  const std::string path = temp_path("telemetry_torn.jsonl");
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"t\":\"header\",\"telemetry\":1,\"name\":\"torn\",\"pid\":7,"
           "\"shard\":\"\",\"epoch_unix_us\":1000}\n";
    out << "{\"t\":\"hb\",\"wall_us\":1.0,\"sweep\":\"s\",\"done\":2,"
           "\"total\":8}\n";
    // The worker was killed mid-write: no trailing newline, truncated JSON.
    out << "{\"t\":\"hb\",\"wall_us\":2.0,\"sweep\":\"s\",\"do";
  }
  TelemetryTail tail(path);
  EXPECT_TRUE(tail.poll());
  EXPECT_TRUE(tail.have_header());
  EXPECT_EQ(tail.pid(), 7);
  EXPECT_EQ(tail.epoch_unix_us(), 1000);
  EXPECT_EQ(tail.heartbeat().done, 2u)
      << "the torn line must not be consumed";
  EXPECT_EQ(tail.lines_read(), 2u);
  EXPECT_FALSE(tail.poll()) << "the torn tail is not new data";

  // The missing bytes land (a restarted attempt never does this, but an
  // interrupted write flushing late can): the completed line is consumed.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "ne\":5,\"total\":8}\n";
  }
  EXPECT_TRUE(tail.poll());
  EXPECT_EQ(tail.heartbeat().done, 5u);
  EXPECT_EQ(tail.lines_read(), 3u);
  std::remove(path.c_str());
}

TEST(ObsTelemetry, TailResetsWhenTheStreamShrinksOrIsReplaced) {
  const std::string path = temp_path("telemetry_rewritten.jsonl");
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"t\":\"header\",\"telemetry\":1,\"name\":\"first\",\"pid\":11,"
           "\"shard\":\"\",\"epoch_unix_us\":100}\n";
    out << "{\"t\":\"hb\",\"wall_us\":1.0,\"sweep\":\"s\",\"done\":7,"
           "\"total\":8}\n";
  }
  TelemetryTail tail(path);
  EXPECT_TRUE(tail.poll());
  EXPECT_EQ(tail.name(), "first");
  EXPECT_EQ(tail.heartbeat().done, 7u);
  EXPECT_EQ(tail.lines_read(), 2u);

  // The worker restarted and rewrote the stream from scratch with a
  // shorter file: the tail must reset to offset zero and re-read the new
  // content instead of waiting for the file to outgrow the stale offset.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "{\"t\":\"header\",\"telemetry\":1,\"name\":\"second\",\"pid\":12,"
           "\"shard\":\"\",\"epoch_unix_us\":200}\n";
  }
  EXPECT_TRUE(tail.poll());
  EXPECT_EQ(tail.name(), "second");
  EXPECT_EQ(tail.pid(), 12);
  EXPECT_EQ(tail.epoch_unix_us(), 200);
  EXPECT_EQ(tail.lines_read(), 3u);

  // Appends to the replacement stream keep flowing incrementally.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"t\":\"hb\",\"wall_us\":2.0,\"sweep\":\"s\",\"done\":1,"
           "\"total\":8}\n";
  }
  EXPECT_TRUE(tail.poll());
  EXPECT_EQ(tail.heartbeat().done, 1u);
  EXPECT_EQ(tail.lines_read(), 4u);
  std::remove(path.c_str());
}

TEST(ObsTelemetry, TailSkipsUnknownLineTypes) {
  const std::string path = temp_path("telemetry_unknown.jsonl");
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"t\":\"header\",\"telemetry\":1,\"name\":\"fwd\",\"pid\":1,"
           "\"shard\":\"\",\"epoch_unix_us\":5}\n";
    out << "{\"t\":\"future-type\",\"payload\":true}\n";
    out << "{\"t\":\"hb\",\"wall_us\":1.0,\"sweep\":\"s\",\"done\":1,"
           "\"total\":2}\n";
  }
  TelemetryTail tail(path);
  EXPECT_TRUE(tail.poll());
  EXPECT_TRUE(tail.have_header());
  EXPECT_EQ(tail.heartbeat().done, 1u)
      << "unknown types must be skipped, not fatal";
  EXPECT_EQ(tail.lines_read(), 3u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcs::obs
