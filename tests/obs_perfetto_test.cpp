// Perfetto protobuf output: wire-format framing, TrackEvent payloads and
// the PerfettoStreamSink's process/track convention, verified with a small
// in-test protobuf decoder (the repo itself never parses protobuf).
#include "obs/perfetto.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/sink.h"
#include "obs/trace.h"
#include "util/proto.h"

namespace dcs::obs {
namespace {

// -- minimal protobuf reader -------------------------------------------------

struct Field {
  std::uint32_t number = 0;
  std::uint32_t wire_type = 0;
  std::uint64_t varint = 0;     // wire type 0
  double fixed64 = 0.0;         // wire type 1 (as double)
  std::string bytes;            // wire type 2
};

std::uint64_t read_varint(const std::string& data, std::size_t* pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (*pos < data.size()) {
    const auto byte = static_cast<unsigned char>(data[(*pos)++]);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  ADD_FAILURE() << "truncated varint";
  return value;
}

/// Decodes one message's fields (repeated fields appear repeatedly).
std::vector<Field> decode(const std::string& data) {
  std::vector<Field> fields;
  std::size_t pos = 0;
  while (pos < data.size()) {
    Field f;
    const std::uint64_t tag = read_varint(data, &pos);
    f.number = static_cast<std::uint32_t>(tag >> 3);
    f.wire_type = static_cast<std::uint32_t>(tag & 7u);
    if (f.wire_type == 0) {
      f.varint = read_varint(data, &pos);
    } else if (f.wire_type == 1) {
      EXPECT_LE(pos + 8, data.size());
      std::memcpy(&f.fixed64, data.data() + pos, sizeof(double));
      pos += 8;
    } else if (f.wire_type == 2) {
      const std::uint64_t len = read_varint(data, &pos);
      EXPECT_LE(pos + len, data.size());
      f.bytes = data.substr(pos, len);
      pos += len;
    } else {
      ADD_FAILURE() << "unexpected wire type " << f.wire_type;
      break;
    }
    fields.push_back(std::move(f));
  }
  return fields;
}

const Field* find(const std::vector<Field>& fields, std::uint32_t number) {
  for (const Field& f : fields) {
    if (f.number == number) return &f;
  }
  return nullptr;
}

/// Splits a trace file into TracePacket payloads, asserting the framing:
/// every top-level record is field 1, length-delimited.
std::vector<std::string> split_packets(const std::string& data) {
  std::vector<std::string> packets;
  for (const Field& f : decode(data)) {
    EXPECT_EQ(f.number, 1u) << "top-level field must be TracePacket";
    EXPECT_EQ(f.wire_type, 2u);
    packets.push_back(f.bytes);
  }
  return packets;
}

// TracePacket / TrackDescriptor / TrackEvent field numbers (stable schema).
constexpr std::uint32_t kPacketTimestamp = 8;
constexpr std::uint32_t kPacketTrackEvent = 11;
constexpr std::uint32_t kPacketTrackDescriptor = 60;
constexpr std::uint32_t kTrackUuid = 1;
constexpr std::uint32_t kTrackName = 2;
constexpr std::uint32_t kTrackProcess = 3;
constexpr std::uint32_t kTrackThread = 4;
constexpr std::uint32_t kProcessPid = 1;
constexpr std::uint32_t kProcessName = 6;
constexpr std::uint32_t kThreadName = 5;
constexpr std::uint32_t kEventType = 9;
constexpr std::uint32_t kEventTrackUuid = 11;
constexpr std::uint32_t kEventName = 23;
constexpr std::uint32_t kEventDoubleCounterValue = 44;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// -- PerfettoWriter ----------------------------------------------------------

TEST(ObsPerfetto, VarintEncodingRoundTrips) {
  for (const std::uint64_t value :
       {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
        0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull}) {
    std::string bytes;
    proto::append_varint(bytes, value);
    std::size_t pos = 0;
    EXPECT_EQ(read_varint(bytes, &pos), value);
    EXPECT_EQ(pos, bytes.size());
  }
}

TEST(ObsPerfetto, WriterEmitsDescriptorsAndEventsWithSequentialUuids) {
  std::ostringstream out;
  PerfettoWriter writer(out);
  const std::uint64_t process = writer.add_process(42, "sim");
  const std::uint64_t thread = writer.add_thread(42, 3, "lane-three");
  const std::uint64_t counter = writer.add_counter(process, "degree");
  EXPECT_EQ(thread, process + 1);
  EXPECT_EQ(counter, process + 2);

  writer.slice_begin(thread, 1000, "work", "cat");
  writer.slice_end(thread, 2500);
  writer.instant(thread, 3000, "mark", "cat");
  writer.counter(counter, 4000, 2.5);
  EXPECT_EQ(writer.packets_written(), 7u);

  const std::vector<std::string> packets = split_packets(out.str());
  ASSERT_EQ(packets.size(), 7u);

  // Packet 0: process descriptor with pid and name.
  {
    const std::vector<Field> pkt = decode(packets[0]);
    const Field* track = find(pkt, kPacketTrackDescriptor);
    ASSERT_NE(track, nullptr);
    const std::vector<Field> desc = decode(track->bytes);
    EXPECT_EQ(find(desc, kTrackUuid)->varint, process);
    const Field* proc = find(desc, kTrackProcess);
    ASSERT_NE(proc, nullptr);
    const std::vector<Field> pd = decode(proc->bytes);
    EXPECT_EQ(find(pd, kProcessPid)->varint, 42u);
    EXPECT_EQ(find(pd, kProcessName)->bytes, "sim");
  }
  // Packet 1: thread descriptor carrying the lane name.
  {
    const std::vector<Field> desc =
        decode(find(decode(packets[1]), kPacketTrackDescriptor)->bytes);
    EXPECT_EQ(find(desc, kTrackUuid)->varint, thread);
    const std::vector<Field> td = decode(find(desc, kTrackThread)->bytes);
    EXPECT_EQ(find(td, kThreadName)->bytes, "lane-three");
  }
  // Packet 2: counter descriptor named at the track level.
  {
    const std::vector<Field> desc =
        decode(find(decode(packets[2]), kPacketTrackDescriptor)->bytes);
    EXPECT_EQ(find(desc, kTrackUuid)->varint, counter);
    EXPECT_EQ(find(desc, kTrackName)->bytes, "degree");
  }
  // Packets 3..6: slice begin/end, instant, counter sample.
  const auto event_of = [&](std::size_t i) {
    const std::vector<Field> pkt = decode(packets[i]);
    const Field* ev = find(pkt, kPacketTrackEvent);
    EXPECT_NE(ev, nullptr);
    return std::make_pair(decode(ev->bytes),
                          find(pkt, kPacketTimestamp)->varint);
  };
  {
    const auto [ev, ts] = event_of(3);
    EXPECT_EQ(find(ev, kEventType)->varint, 1u);  // TYPE_SLICE_BEGIN
    EXPECT_EQ(find(ev, kEventTrackUuid)->varint, thread);
    EXPECT_EQ(find(ev, kEventName)->bytes, "work");
    EXPECT_EQ(ts, 1000u);
  }
  {
    const auto [ev, ts] = event_of(4);
    EXPECT_EQ(find(ev, kEventType)->varint, 2u);  // TYPE_SLICE_END
    EXPECT_EQ(ts, 2500u);
  }
  {
    const auto [ev, ts] = event_of(5);
    EXPECT_EQ(find(ev, kEventType)->varint, 3u);  // TYPE_INSTANT
    EXPECT_EQ(find(ev, kEventName)->bytes, "mark");
    EXPECT_EQ(ts, 3000u);
  }
  {
    const auto [ev, ts] = event_of(6);
    EXPECT_EQ(find(ev, kEventType)->varint, 4u);  // TYPE_COUNTER
    EXPECT_EQ(find(ev, kEventTrackUuid)->varint, counter);
    EXPECT_EQ(find(ev, kEventDoubleCounterValue)->fixed64, 2.5);
    EXPECT_EQ(ts, 4000u);
  }
}

TEST(ObsPerfetto, IdenticalCallSequencesProduceIdenticalBytes) {
  const auto run = [] {
    std::ostringstream out;
    PerfettoWriter writer(out);
    const std::uint64_t p = writer.add_process(1, "sim");
    const std::uint64_t t = writer.add_thread(1, 0, "lane");
    writer.slice_begin(t, 10, "a", "c");
    writer.slice_end(t, 20);
    writer.counter(writer.add_counter(p, "x"), 30, 1.5);
    return out.str();
  };
  EXPECT_EQ(run(), run()) << "timeline re-merges rely on byte stability";
}

// -- PerfettoStreamSink ------------------------------------------------------

TraceEvent event_with(Domain domain, char phase, double ts_us,
                      const std::string& name) {
  TraceEvent e;
  e.domain = domain;
  e.phase = phase;
  e.ts_us = ts_us;
  e.cat = "test";
  e.name = name;
  return e;
}

TEST(ObsPerfetto, StreamSinkMapsDomainsLanesAndCountersToTracks) {
  const std::string path = temp_path("perfetto_sink.perfetto");
  {
    PerfettoStreamSink sink(path, {.buffer_events = 4});
    ASSERT_TRUE(sink.ok());
    sink.write_lane_name(Domain::kSim, 0, "named-early");
    sink.write(event_with(Domain::kSim, 'i', 1.0, "tick"));
    TraceEvent span = event_with(Domain::kSim, 'X', 2.0, "span");
    span.dur_us = 5.0;
    sink.write(span);
    TraceEvent sample = event_with(Domain::kWall, 'C', 3.0, "degree");
    sample.args = {arg("value", 2.75)};
    sink.write(sample);
    sink.finalize();
    EXPECT_EQ(sink.events_written(), 4u);  // 3 + synthetic lane-name 'M'
  }
  const std::vector<std::string> packets = split_packets(read_file(path));
  // sim process + sim thread + wall process + wall counter descriptors,
  // instant + slice begin/end + counter sample events.
  ASSERT_EQ(packets.size(), 8u);

  std::map<std::uint64_t, std::string> process_names;   // uuid -> name
  std::map<std::uint64_t, std::string> thread_names;    // uuid -> name
  std::map<std::uint64_t, std::string> counter_tracks;  // uuid -> name
  std::vector<std::vector<Field>> events;
  for (const std::string& payload : packets) {
    const std::vector<Field> pkt = decode(payload);
    if (const Field* track = find(pkt, kPacketTrackDescriptor)) {
      const std::vector<Field> desc = decode(track->bytes);
      const std::uint64_t uuid = find(desc, kTrackUuid)->varint;
      if (const Field* proc = find(desc, kTrackProcess)) {
        process_names[uuid] = find(decode(proc->bytes), kProcessName)->bytes;
      } else if (const Field* thread = find(desc, kTrackThread)) {
        thread_names[uuid] = find(decode(thread->bytes), kThreadName)->bytes;
      } else if (const Field* name = find(desc, kTrackName)) {
        counter_tracks[uuid] = name->bytes;
      }
    }
    if (const Field* ev = find(pkt, kPacketTrackEvent)) {
      events.push_back(decode(ev->bytes));
    }
  }
  ASSERT_EQ(process_names.size(), 2u);
  std::vector<std::string> procs;
  for (const auto& [uuid, name] : process_names) procs.push_back(name);
  EXPECT_EQ(procs, (std::vector<std::string>{"sim", "wall"}));
  // The early write_lane_name must beat the lazy "lane-0" default.
  ASSERT_EQ(thread_names.size(), 1u);
  EXPECT_EQ(thread_names.begin()->second, "named-early");
  ASSERT_EQ(counter_tracks.size(), 1u);
  EXPECT_EQ(counter_tracks.begin()->second, "degree");

  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(find(events[0], kEventType)->varint, 3u);  // instant
  EXPECT_EQ(find(events[1], kEventType)->varint, 1u);  // slice begin
  EXPECT_EQ(find(events[2], kEventType)->varint, 2u);  // slice end
  EXPECT_EQ(find(events[3], kEventType)->varint, 4u);  // counter
  EXPECT_EQ(find(events[3], kEventDoubleCounterValue)->fixed64, 2.75);
  EXPECT_EQ(find(events[3], kEventTrackUuid)->varint,
            counter_tracks.begin()->first);
  std::remove(path.c_str());
}

TEST(ObsPerfetto, LaneRenameRedeclaresTheSameTrackUuid) {
  const std::string path = temp_path("perfetto_rename.perfetto");
  {
    PerfettoStreamSink sink(path, {.buffer_events = 1});
    // buffer_events=1 renders the instant (minting the track) before the
    // rename arrives, forcing the redeclare path rather than the eager-name
    // one.
    sink.write(event_with(Domain::kSim, 'i', 1.0, "before"));
    sink.write_lane_name(Domain::kSim, 0, "renamed");
    sink.finalize();
  }
  std::map<std::uint64_t, std::vector<std::string>> names_by_uuid;
  for (const std::string& payload : split_packets(read_file(path))) {
    const std::vector<Field> pkt = decode(payload);
    const Field* track = find(pkt, kPacketTrackDescriptor);
    if (track == nullptr) continue;
    const std::vector<Field> desc = decode(track->bytes);
    if (const Field* thread = find(desc, kTrackThread)) {
      names_by_uuid[find(desc, kTrackUuid)->varint].push_back(
          find(decode(thread->bytes), kThreadName)->bytes);
    }
  }
  // Both descriptors must target one uuid — trace_processor keeps the last
  // name, so a rename must never mint a second track.
  ASSERT_EQ(names_by_uuid.size(), 1u);
  ASSERT_EQ(names_by_uuid.begin()->second.size(), 2u);
  EXPECT_EQ(names_by_uuid.begin()->second.back(), "renamed");
  std::remove(path.c_str());
}

TEST(ObsPerfetto, CounterEventsWithoutNumericPayloadAreDropped) {
  TraceEvent e = event_with(Domain::kSim, 'C', 1.0, "track");
  double value = 0.0;
  EXPECT_FALSE(detail::counter_value(e, &value));
  e.args = {arg("note", std::string_view("text"))};
  EXPECT_FALSE(detail::counter_value(e, &value));
  e.args = {arg("note", std::string_view("text")), arg("value", 4.0)};
  EXPECT_TRUE(detail::counter_value(e, &value));
  EXPECT_EQ(value, 4.0);
  // No "value" key: the first numeric arg qualifies.
  e.args = {arg("degree", 3.5)};
  EXPECT_TRUE(detail::counter_value(e, &value));
  EXPECT_EQ(value, 3.5);
}

}  // namespace
}  // namespace dcs::obs
