#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

namespace dcs::obs {
namespace {

TEST(ObsMetrics, CounterIsMonotoneAndGaugeTracksExtremes) {
  MetricsRegistry registry;
  Counter& c = registry.counter("ticks_total");
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_THROW(c.inc(-1.0), std::invalid_argument);

  Gauge& g = registry.gauge("ups_soc");
  g.set(0.8);
  g.set_min(0.9);
  EXPECT_DOUBLE_EQ(g.value(), 0.8);
  g.set_min(0.3);
  EXPECT_DOUBLE_EQ(g.value(), 0.3);
  g.set_max(0.7);
  EXPECT_DOUBLE_EQ(g.value(), 0.7);
}

TEST(ObsMetrics, SameIdentityReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x", {{"mode", "greedy"}});
  Counter& b = registry.counter("x", {{"mode", "greedy"}});
  EXPECT_EQ(&a, &b);
  // Different labels are a different identity.
  Counter& c = registry.counter("x", {{"mode", "bound"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(ObsMetrics, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  registry.histogram("h", {1.0, 2.0});
  EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), std::invalid_argument);
}

TEST(ObsMetrics, HistogramBucketsAreCumulativeWithImplicitInf) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("sprint_degree", {1.0, 2.0, 3.0});
  h.observe(0.5);
  h.observe(1.0);  // falls in the le=1 bucket (upper bound inclusive)
  h.observe(2.5);
  h.observe(10.0);  // +Inf bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
  const std::vector<std::size_t> cum = h.cumulative_counts();
  ASSERT_EQ(cum.size(), 4u);  // 3 finite bounds + Inf
  EXPECT_EQ(cum[0], 2u);
  EXPECT_EQ(cum[1], 2u);
  EXPECT_EQ(cum[2], 3u);
  EXPECT_EQ(cum[3], 4u);
}

TEST(ObsMetrics, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.counter("faults_total", {{"kind", "chiller"}}).inc(3);
  registry.gauge("ups_soc").set(0.25);
  registry.histogram("degree", {1.0, 2.0}).observe(1.5);
  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE faults_total counter"), std::string::npos);
  EXPECT_NE(text.find("faults_total{kind=\"chiller\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ups_soc gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE degree histogram"), std::string::npos);
  EXPECT_NE(text.find("degree_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("degree_count 1"), std::string::npos);
}

TEST(ObsMetrics, CsvIsLongFormatAndJsonParsesShape) {
  MetricsRegistry registry;
  registry.gauge("cb_trip_margin_s", {{"sweep", "a,b"}}).set(42.0);
  std::ostringstream csv;
  registry.write_csv(csv);
  EXPECT_NE(csv.str().find("metric,kind,labels,stat,value"),
            std::string::npos);
  EXPECT_NE(csv.str().find("cb_trip_margin_s,gauge"), std::string::npos);

  std::ostringstream json;
  registry.write_json(json);
  EXPECT_NE(json.str().find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.str().find("\"cb_trip_margin_s\""), std::string::npos);
}

TEST(ObsMetrics, SnapshotOrderIsDeterministic) {
  // Insertion order differs; output order must not.
  MetricsRegistry a;
  a.counter("z").inc();
  a.counter("a").inc();
  MetricsRegistry b;
  b.counter("a").inc();
  b.counter("z").inc();
  std::ostringstream sa, sb;
  a.write_csv(sa);
  b.write_csv(sb);
  EXPECT_EQ(sa.str(), sb.str());
}

}  // namespace
}  // namespace dcs::obs
