// Parameterized property sweeps over the thermal substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "thermal/cooling_plant.h"
#include "thermal/room_model.h"
#include "thermal/tes_tank.h"
#include "util/rng.h"

namespace dcs::thermal {
namespace {

// ---------------------------------------------------------------------------
// TES: conservation under arbitrary discharge/recharge interleavings.
// ---------------------------------------------------------------------------

class TesProperty : public ::testing::TestWithParam<double /*capacity kWh*/> {};

TEST_P(TesProperty, ConservationUnderRandomUse) {
  const double kwh = GetParam();
  TesTank tank("t", {.capacity = Energy::kilowatt_hours(kwh)});
  Rng rng(0x7E5);
  Energy out = Energy::zero();
  Energy in = Energy::zero();
  for (int i = 0; i < 5000; ++i) {
    const Duration dt = Duration::seconds(1);
    if (rng.uniform() < 0.6) {
      out += tank.discharge(Power::kilowatts(rng.uniform(0.0, kwh)), dt) * dt;
    } else {
      in += tank.recharge(Power::kilowatts(rng.uniform(0.0, kwh / 2.0)), dt) * dt;
    }
    ASSERT_GE(tank.state_of_charge(), -1e-12);
    ASSERT_LE(tank.state_of_charge(), 1.0 + 1e-12);
  }
  ASSERT_NEAR((out + tank.stored()).j(), (tank.capacity() + in).j(), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TesProperty, ::testing::Values(1.0, 50.0, 2000.0));

// ---------------------------------------------------------------------------
// Cooling plant: the electrical draw and heat flows respect their bounds
// for every (IT load, TES mode, relief) combination.
// ---------------------------------------------------------------------------

using PlantParams = std::tuple<double /*pue*/, double /*it MW*/, bool /*tes*/,
                               double /*relief MW*/>;

class PlantProperty : public ::testing::TestWithParam<PlantParams> {};

TEST_P(PlantProperty, FlowBounds) {
  const auto [pue, it_mw, tes_on, relief_mw] = GetParam();
  TesTank tank("t", {.capacity = Power::megawatts(10) * Duration::minutes(12)});
  CoolingPlant plant({.pue = pue,
                      .nominal_it_load = Power::megawatts(10),
                      .tes = &tank});
  const Power it = Power::megawatts(it_mw);
  const CoolingStep s =
      plant.step(it, tes_on, Power::megawatts(relief_mw), Duration::seconds(1));

  const Power nominal = plant.nominal_electrical();
  const Power aux = nominal * (1.0 / 3.0);
  // Electrical draw is between the aux floor and the nominal plant draw.
  EXPECT_GE(s.electrical, aux - Power::watts(1));
  EXPECT_LE(s.electrical, nominal + Power::watts(1));
  // Heat absorbed never exceeds the heat generated.
  EXPECT_LE(s.heat_absorbed, it + Power::watts(1));
  // Relief never exceeds the chiller's displaceable share.
  EXPECT_LE(s.relief, nominal * (2.0 / 3.0) + Power::watts(1));
  // TES absorption only in TES mode.
  if (!tes_on) EXPECT_DOUBLE_EQ(s.tes_heat.w(), 0.0);
  // With a charged tank and TES on, every watt of heat is absorbed.
  if (tes_on) EXPECT_NEAR(s.heat_absorbed.w(), it.w(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlantProperty,
    ::testing::Combine(::testing::Values(1.2, 1.53, 2.0),
                       ::testing::Values(3.0, 10.0, 26.0),
                       ::testing::Bool(),
                       ::testing::Values(0.0, 1.0, 50.0)));

// ---------------------------------------------------------------------------
// Room: temperature is bounded by the gap integral and never undershoots
// the setpoint, for every capacitance calibration.
// ---------------------------------------------------------------------------

class RoomProperty : public ::testing::TestWithParam<double /*cal minutes*/> {};

TEST_P(RoomProperty, RiseBoundedByGapIntegral) {
  RoomModel::Params params;
  params.calibration_power = Power::megawatts(10);
  params.calibration_time = Duration::minutes(GetParam());
  RoomModel room(params);
  Rng rng(0x400);
  double gap_integral_j = 0.0;
  for (int i = 0; i < 3600; ++i) {
    const Power gen = Power::megawatts(rng.uniform(0.0, 26.0));
    const Power abs = Power::megawatts(rng.uniform(0.0, 12.0));
    room.step(gen, abs, Duration::seconds(1));
    if (gen > abs) gap_integral_j += (gen - abs).w();
    ASSERT_GE(room.rise().c(), 0.0);
    // The rise can never exceed the pure heating bound (recovery only
    // removes heat).
    ASSERT_LE(room.rise().c(),
              gap_integral_j / room.capacitance_j_per_c() + 1e-9);
  }
  EXPECT_TRUE(std::isfinite(room.peak_temperature().c()));
  EXPECT_GE(room.peak_temperature().c(), 25.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoomProperty, ::testing::Values(5.0, 10.0, 20.0));

}  // namespace
}  // namespace dcs::thermal
