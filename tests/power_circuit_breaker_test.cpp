#include "power/circuit_breaker.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace dcs::power {
namespace {

CircuitBreaker make_cb(double rated_w = 1000.0) {
  return CircuitBreaker("cb", {.rated = Power::watts(rated_w)});
}

TEST(CircuitBreaker, ConstantOverloadTripsAtCurveTime) {
  // 60 % overload must trip at 60 s (within one 1 s step).
  CircuitBreaker cb = make_cb();
  int steps = 0;
  while (!cb.tripped() && steps < 1000) {
    cb.apply_load(Power::watts(1600), Duration::seconds(1));
    ++steps;
  }
  EXPECT_TRUE(cb.tripped());
  EXPECT_NEAR(steps, 60, 1);
}

TEST(CircuitBreaker, RatedLoadNeverTrips) {
  CircuitBreaker cb = make_cb();
  for (int i = 0; i < 100000; ++i) {
    cb.apply_load(Power::watts(1000), Duration::seconds(1));
  }
  EXPECT_FALSE(cb.tripped());
  EXPECT_DOUBLE_EQ(cb.thermal_state(), 0.0);
}

TEST(CircuitBreaker, VaryingOverloadAccumulates) {
  CircuitBreaker cb = make_cb();
  // 30 s at 60 % (half the trip budget), then 30 % should trip ~120 s later
  // (half of its 240 s budget remaining).
  for (int i = 0; i < 30; ++i) cb.apply_load(Power::watts(1600), Duration::seconds(1));
  EXPECT_NEAR(cb.thermal_state(), 0.5, 0.01);
  int steps = 0;
  while (!cb.tripped() && steps < 1000) {
    cb.apply_load(Power::watts(1300), Duration::seconds(1));
    ++steps;
  }
  EXPECT_NEAR(steps, 120, 2);
}

TEST(CircuitBreaker, CoolsWhenUnderRated) {
  CircuitBreaker cb = make_cb();
  for (int i = 0; i < 30; ++i) cb.apply_load(Power::watts(1600), Duration::seconds(1));
  const double hot = cb.thermal_state();
  // Ten minutes at rated load: one cooling time constant.
  for (int i = 0; i < 600; ++i) cb.apply_load(Power::watts(900), Duration::seconds(1));
  EXPECT_NEAR(cb.thermal_state(), hot * std::exp(-1.0), 0.01);
}

TEST(CircuitBreaker, TimeToTripReflectsThermalState) {
  CircuitBreaker cb = make_cb();
  EXPECT_NEAR(cb.time_to_trip_at(Power::watts(1600)).sec(), 60.0, 1e-9);
  for (int i = 0; i < 30; ++i) cb.apply_load(Power::watts(1600), Duration::seconds(1));
  EXPECT_NEAR(cb.time_to_trip_at(Power::watts(1600)).sec(), 30.0, 0.6);
  EXPECT_TRUE(cb.time_to_trip_at(Power::watts(1000)).is_infinite());
}

TEST(CircuitBreaker, MaxLoadForHoldsAtLeastThatLong) {
  CircuitBreaker cb = make_cb();
  const Power allowed = cb.max_load_for(Duration::minutes(1));
  // Fresh breaker, 60 s hold: exactly the 60 % overload point.
  EXPECT_NEAR(allowed.w(), 1600.0, 1e-6);
  // Applying exactly that load for 59 s must not trip.
  for (int i = 0; i < 59; ++i) cb.apply_load(allowed, Duration::seconds(1));
  EXPECT_FALSE(cb.tripped());
}

TEST(CircuitBreaker, MaxLoadForShrinksAsItHeats) {
  CircuitBreaker cb = make_cb();
  const Power fresh = cb.max_load_for(Duration::minutes(1));
  for (int i = 0; i < 30; ++i) cb.apply_load(Power::watts(1600), Duration::seconds(1));
  const Power hot = cb.max_load_for(Duration::minutes(1));
  EXPECT_LT(hot, fresh);
  EXPECT_GE(hot, cb.rated());  // never below rated
}

TEST(CircuitBreaker, MaxLoadForInfiniteHoldIsNoTripRatio) {
  CircuitBreaker cb = make_cb();
  EXPECT_NEAR(cb.max_load_for(Duration::infinity()).w(), 1050.0, 1e-9);
}

TEST(CircuitBreaker, TrippedBreakerBehaviour) {
  CircuitBreaker cb = make_cb();
  for (int i = 0; i < 61; ++i) cb.apply_load(Power::watts(1600), Duration::seconds(1));
  ASSERT_TRUE(cb.tripped());
  EXPECT_DOUBLE_EQ(cb.time_to_trip_at(Power::watts(1600)).sec(), 0.0);
  EXPECT_DOUBLE_EQ(cb.max_load_for(Duration::minutes(1)).w(), 0.0);
  // Applying load to a tripped breaker is a no-op.
  cb.apply_load(Power::watts(2000), Duration::seconds(1));
  EXPECT_DOUBLE_EQ(cb.thermal_state(), 1.0);
}

TEST(CircuitBreaker, ResetRestoresService) {
  CircuitBreaker cb = make_cb();
  for (int i = 0; i < 61; ++i) cb.apply_load(Power::watts(1600), Duration::seconds(1));
  ASSERT_TRUE(cb.tripped());
  cb.reset();
  EXPECT_FALSE(cb.tripped());
  EXPECT_DOUBLE_EQ(cb.thermal_state(), 0.0);
}

TEST(CircuitBreaker, SubSecondStepsMatchCoarseSteps) {
  CircuitBreaker fine = make_cb();
  CircuitBreaker coarse = make_cb();
  for (int i = 0; i < 300; ++i) fine.apply_load(Power::watts(1500), Duration::seconds(0.1));
  for (int i = 0; i < 30; ++i) coarse.apply_load(Power::watts(1500), Duration::seconds(1));
  EXPECT_NEAR(fine.thermal_state(), coarse.thermal_state(), 1e-9);
}

TEST(CircuitBreaker, LoadRatio) {
  const CircuitBreaker cb = make_cb(2000.0);
  EXPECT_DOUBLE_EQ(cb.load_ratio(Power::watts(3000)), 1.5);
  EXPECT_THROW((void)cb.load_ratio(Power::watts(-1)), std::invalid_argument);
}

TEST(CircuitBreaker, Validation) {
  EXPECT_THROW((void)CircuitBreaker("bad", {.rated = Power::zero()}),
               std::invalid_argument);
  CircuitBreaker cb = make_cb();
  EXPECT_THROW((void)cb.apply_load(Power::watts(1), Duration::zero()),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcs::power
