#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.h"
#include "sim/event_queue.h"
#include "sim/recorder.h"

namespace dcs::sim {
namespace {

class Counter final : public Component {
 public:
  void tick(Duration now, Duration dt) override {
    ticks.push_back(now);
    last_dt = dt;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "counter"; }
  std::vector<Duration> ticks;
  Duration last_dt;
};

TEST(Engine, RejectsNonPositiveStep) {
  EXPECT_THROW((void)Engine(Duration::zero()), std::invalid_argument);
}

TEST(Engine, TicksComponentsInOrder) {
  Engine engine(Duration::seconds(1));
  std::vector<int> order;
  class Probe final : public Component {
   public:
    Probe(std::vector<int>* order, int id) : order_(order), id_(id) {}
    void tick(Duration, Duration) override { order_->push_back(id_); }
    [[nodiscard]] std::string_view name() const noexcept override { return "probe"; }
   private:
    std::vector<int>* order_;
    int id_;
  };
  Probe a(&order, 1), b(&order, 2);
  engine.add(&a);
  engine.add(&b);
  engine.step_once();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Engine, RunUntilCountsTicks) {
  Engine engine(Duration::seconds(1));
  Counter c;
  engine.add(&c);
  const std::size_t n = engine.run_until(Duration::seconds(10));
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(c.ticks.size(), 10u);
  EXPECT_DOUBLE_EQ(c.ticks.front().sec(), 0.0);
  EXPECT_DOUBLE_EQ(c.ticks.back().sec(), 9.0);
  EXPECT_DOUBLE_EQ(engine.now().sec(), 10.0);
}

TEST(Engine, ScheduledEventsFireBeforeTick) {
  Engine engine(Duration::seconds(1));
  Counter c;
  engine.add(&c);
  bool fired = false;
  engine.schedule(Duration::seconds(5), [&] { fired = true; });
  engine.run_until(Duration::seconds(5));
  EXPECT_FALSE(fired);  // event at t=5 fires when the t=5 tick runs
  engine.run_until(Duration::seconds(6));
  EXPECT_TRUE(fired);
}

TEST(Engine, CannotSchedulePast) {
  Engine engine(Duration::seconds(1));
  engine.run_until(Duration::seconds(5));
  EXPECT_THROW((void)engine.schedule(Duration::seconds(1), [] {}),
               std::invalid_argument);
}

TEST(Engine, RequestStopExitsLoop) {
  Engine engine(Duration::seconds(1));
  class Stopper final : public Component {
   public:
    explicit Stopper(Engine* e) : engine_(e) {}
    void tick(Duration now, Duration) override {
      if (now >= Duration::seconds(3)) engine_->request_stop();
    }
    [[nodiscard]] std::string_view name() const noexcept override { return "stopper"; }
   private:
    Engine* engine_;
  };
  Stopper s(&engine);
  engine.add(&s);
  const std::size_t n = engine.run_until(Duration::seconds(100));
  EXPECT_EQ(n, 4u);
}

TEST(Engine, NullComponentRejected) {
  Engine engine;
  EXPECT_THROW((void)engine.add(nullptr), std::invalid_argument);
}

TEST(Engine, OffGridScheduleRejected) {
  // An off-grid event would silently slip to the next tick boundary in
  // fire_due(); the engine requires grid alignment instead.
  Engine engine(Duration::seconds(1));
  EXPECT_THROW((void)engine.schedule(Duration::seconds(2.5), [] {}),
               std::invalid_argument);
  // Exactly-on-grid times are accepted, including t=0 and large multiples.
  engine.schedule(Duration::zero(), [] {});
  engine.schedule(Duration::seconds(5), [] {});
  engine.schedule(Duration::hours(24), [] {});
}

TEST(Engine, PreRunStopRequestHonored) {
  // A stop requested between setup and run (e.g. a drain signal) must not
  // be clobbered by run_until: zero ticks run.
  Engine engine(Duration::seconds(1));
  Counter c;
  engine.add(&c);
  engine.request_stop();
  EXPECT_EQ(engine.run_until(Duration::seconds(10)), 0u);
  EXPECT_TRUE(c.ticks.empty());
  EXPECT_DOUBLE_EQ(engine.now().sec(), 0.0);
  // clear_stop() re-arms the engine for an explicit rerun.
  engine.clear_stop();
  EXPECT_EQ(engine.run_until(Duration::seconds(10)), 10u);
  EXPECT_EQ(c.ticks.size(), 10u);
}

/// Counter that also publishes a span-skip hint.
class HintedCounter final : public Component {
 public:
  explicit HintedCounter(Duration hint) : hint_(hint) {}
  void tick(Duration now, Duration) override { ticks.push_back(now); }
  [[nodiscard]] Duration next_event_hint(Duration) const override {
    return hint_;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "hinted";
  }
  std::vector<Duration> ticks;

 private:
  Duration hint_;
};

TEST(Engine, SpanSkipLeapsAndTicksEveryStep) {
  // A component hinting "nothing until the end" lets the engine leap, but
  // every tick still runs: the leap replays the per-tick walk verbatim.
  Engine engine(Duration::seconds(1));
  HintedCounter c(Duration::infinity());
  engine.add(&c);
  EXPECT_EQ(engine.run_until(Duration::seconds(50)), 50u);
  EXPECT_EQ(c.ticks.size(), 50u);
  for (std::size_t i = 0; i < c.ticks.size(); ++i) {
    EXPECT_DOUBLE_EQ(c.ticks[i].sec(), static_cast<double>(i));
  }
  EXPECT_GE(engine.leap_count(), 1u);
  EXPECT_EQ(engine.leaped_ticks(), 50u);
}

TEST(Engine, DefaultHintDisablesSkipping) {
  // Components that do not override next_event_hint decline span skipping
  // (the conservative default), so the engine never leaps.
  Engine engine(Duration::seconds(1));
  Counter c;
  engine.add(&c);
  EXPECT_EQ(engine.run_until(Duration::seconds(20)), 20u);
  EXPECT_EQ(engine.leap_count(), 0u);
  EXPECT_EQ(engine.leaped_ticks(), 0u);
}

TEST(Engine, SetSpanSkipOffForcesPlainLoop) {
  Engine engine(Duration::seconds(1));
  engine.set_span_skip(false);
  HintedCounter c(Duration::infinity());
  engine.add(&c);
  EXPECT_EQ(engine.run_until(Duration::seconds(20)), 20u);
  EXPECT_EQ(c.ticks.size(), 20u);
  EXPECT_EQ(engine.leap_count(), 0u);
}

TEST(Engine, ScheduledEventBoundsLeapAndFires) {
  // An event inside an otherwise-quiescent span still fires on its exact
  // tick: the leap is bounded by the event queue.
  Engine engine(Duration::seconds(1));
  HintedCounter c(Duration::infinity());
  engine.add(&c);
  Duration fired_at = Duration::infinity();
  engine.schedule(Duration::seconds(7), [&] { fired_at = engine.now(); });
  EXPECT_EQ(engine.run_until(Duration::seconds(30)), 30u);
  EXPECT_DOUBLE_EQ(fired_at.sec(), 7.0);
  EXPECT_EQ(c.ticks.size(), 30u);
}

TEST(Engine, StopRequestInsideLeapExitsPromptly) {
  Engine engine(Duration::seconds(1));
  class Stopper final : public Component {
   public:
    explicit Stopper(Engine* e) : engine_(e) {}
    void tick(Duration now, Duration) override {
      if (now >= Duration::seconds(3)) engine_->request_stop();
    }
    [[nodiscard]] Duration next_event_hint(Duration) const override {
      return Duration::infinity();
    }
    [[nodiscard]] std::string_view name() const noexcept override {
      return "stopper";
    }
   private:
    Engine* engine_;
  };
  Stopper s(&engine);
  engine.add(&s);
  EXPECT_EQ(engine.run_until(Duration::seconds(100)), 4u);
  EXPECT_DOUBLE_EQ(engine.now().sec(), 4.0);
}

TEST(EventQueue, FiresInTimeOrderWithFifoTieBreak) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Duration::seconds(2), [&] { order.push_back(2); });
  q.schedule(Duration::seconds(1), [&] { order.push_back(1); });
  q.schedule(Duration::seconds(2), [&] { order.push_back(3); });
  EXPECT_EQ(q.fire_due(Duration::seconds(2)), 3u);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST(EventQueue, OnlyDueEventsFire) {
  EventQueue q;
  int fired = 0;
  q.schedule(Duration::seconds(1), [&] { ++fired; });
  q.schedule(Duration::seconds(10), [&] { ++fired; });
  EXPECT_EQ(q.fire_due(Duration::seconds(5)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time().sec(), 10.0);
}

TEST(EventQueue, NextTimeOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.next_time(), std::invalid_argument);
  EXPECT_THROW((void)q.schedule(Duration::zero(), nullptr), std::invalid_argument);
}

TEST(Recorder, RecordsAndRetrievesChannels) {
  Recorder rec;
  rec.record("power", Duration::seconds(0), 1.0);
  rec.record("power", Duration::seconds(1), 2.0);
  rec.record("temp", Duration::seconds(0), 25.0);
  EXPECT_TRUE(rec.has("power"));
  EXPECT_FALSE(rec.has("missing"));
  EXPECT_EQ(rec.series("power").size(), 2u);
  EXPECT_EQ(rec.channels().size(), 2u);
  EXPECT_THROW((void)rec.series("missing"), std::invalid_argument);
}

TEST(Recorder, SameTimeOverwrites) {
  Recorder rec;
  rec.record("x", Duration::seconds(1), 1.0);
  rec.record("x", Duration::seconds(1), 9.0);
  ASSERT_EQ(rec.series("x").size(), 1u);
  EXPECT_DOUBLE_EQ(rec.series("x")[0].value, 9.0);
}

TEST(Recorder, ClearEmptiesEverything) {
  Recorder rec;
  rec.record("x", Duration::zero(), 1.0);
  rec.clear();
  EXPECT_FALSE(rec.has("x"));
  EXPECT_TRUE(rec.channels().empty());
}

}  // namespace
}  // namespace dcs::sim
