#include "core/config.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dcs::core {
namespace {

TEST(DataCenterConfig, PaperDerivedValues) {
  const DataCenterConfig c;
  EXPECT_DOUBLE_EQ(c.server_peak_normal().w(), 55.0);
  EXPECT_NEAR(c.fleet_peak_normal().mw(), 10.0, 0.01);
  // PDU breaker: 55 W x 200 x 1.25 = 13.75 kW (Section VI-A).
  EXPECT_NEAR(c.pdu_rated().kw(), 13.75, 1e-9);
  // DC breaker: 10 MW x 1.53 x 1.10 with the default 10 % headroom.
  EXPECT_NEAR(c.dc_rated().mw(), 10.0 * 1.53 * 1.10, 0.02);
}

TEST(DataCenterConfig, TesActivationRule) {
  // Section V-C: 5 min x (peak normal / max additional) =
  // 5 x 55/90 = 3.06 minutes for the default chip.
  const DataCenterConfig c;
  EXPECT_NEAR(c.tes_activation_time().min(), 5.0 * 55.0 / 90.0, 0.01);
}

TEST(DataCenterConfig, HeadroomScalesDcRating) {
  DataCenterConfig c;
  c.dc_headroom = 0.0;
  const Power base = c.dc_rated();
  c.dc_headroom = 0.20;
  EXPECT_NEAR(c.dc_rated() / base, 1.20, 1e-9);
}

TEST(DataCenterConfig, TopologyParamsConsistent) {
  const DataCenterConfig c;
  const auto t = c.topology_params();
  EXPECT_EQ(t.pdu_count, 909u);
  EXPECT_EQ(t.pdu.server_count, 200u);
  EXPECT_DOUBLE_EQ(t.pdu.breaker.rated.w(), c.pdu_rated().w());
  EXPECT_DOUBLE_EQ(t.dc_breaker.rated.w(), c.dc_rated().w());
}

TEST(DataCenterConfig, TesParamsTwelveMinutes) {
  const DataCenterConfig c;
  const auto tes = c.tes_params();
  EXPECT_NEAR(tes.capacity.j(), c.fleet_peak_normal().w() * 720.0, 1.0);
}

TEST(DataCenterConfig, RoomCalibratedToFleet) {
  const DataCenterConfig c;
  const auto room = c.room_params();
  EXPECT_DOUBLE_EQ(room.calibration_power.w(), c.fleet_peak_normal().w());
}

TEST(DataCenterConfig, ValidateAcceptsDefaults) {
  const DataCenterConfig c;
  EXPECT_NO_THROW(c.validate());
}

TEST(DataCenterConfig, ValidateRejectsBadValues) {
  DataCenterConfig c;
  c.pue = 0.9;
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
  c = {};
  c.dc_headroom = -0.1;
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
  c = {};
  c.tes_capacity_minutes = 0.0;
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
  c = {};
  c.cb_reserve = Duration::zero();
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
  c = {};
  c.chiller_fraction = 1.0;
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
  c = {};
  c.recharge_demand_threshold = 0.0;
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
}

TEST(DataCenterConfig, ValidateRejectsDegenerateStructure) {
  DataCenterConfig c;
  c.fleet.pdu_count = 0;
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
  c = {};
  c.fleet.servers_per_pdu = 0;
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
  c = {};
  c.fleet.server.chip.normal_cores = 0;
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
  // No dark cores: sprinting degree could never exceed 1.
  c = {};
  c.fleet.server.chip.total_cores = c.fleet.server.chip.normal_cores;
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
  c = {};
  c.battery_per_server.capacity = Charge::zero();
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
  c = {};
  c.battery_per_server.reserve_floor = 1.0;
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
  c = {};
  c.battery_per_server.reserve_floor = -0.1;
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
  c = {};
  c.trip_curve.thermal_coeff_s = 0.0;
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
  c = {};
  c.cb_cooling_tau = Duration::zero();
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
}

TEST(DataCenterConfig, ValidateRejectsUnholdableCbReserve) {
  // 21.6 / 0.05^2 = 8640 s is the default curve's no-trip asymptote: a
  // reserve at or beyond it admits no overload at all.
  DataCenterConfig c;
  c.cb_reserve = Duration::seconds(8640.0);
  EXPECT_THROW((void)c.validate(), std::invalid_argument);
  c.cb_reserve = Duration::seconds(8000.0);  // just inside: still holdable
  EXPECT_NO_THROW(c.validate());
  c.cb_reserve = Duration::minutes(1.0);     // the paper's default
  EXPECT_NO_THROW(c.validate());
}

TEST(DataCenterConfig, CoolingParamsCarryTes) {
  const DataCenterConfig c;
  thermal::TesTank tank("t", c.tes_params());
  const auto p = c.cooling_params(&tank);
  EXPECT_EQ(p.tes, &tank);
  EXPECT_DOUBLE_EQ(p.pue, 1.53);
  EXPECT_DOUBLE_EQ(p.nominal_it_load.w(), c.fleet_peak_normal().w());
}

}  // namespace
}  // namespace dcs::core
