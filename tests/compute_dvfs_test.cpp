#include "compute/dvfs.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/datacenter.h"
#include "workload/yahoo_trace.h"

namespace dcs::compute {
namespace {

TEST(DvfsModel, CubicPowerLaw) {
  const DvfsModel m;
  EXPECT_DOUBLE_EQ(m.power_multiplier(1.0), 1.0);
  EXPECT_NEAR(m.power_multiplier(1.2), 1.728, 1e-9);
  EXPECT_NEAR(m.power_multiplier(0.5), 0.125, 1e-9);
}

TEST(DvfsModel, PerformanceIsFrequency) {
  const DvfsModel m;
  EXPECT_DOUBLE_EQ(m.performance(1.3), 1.3);
  EXPECT_DOUBLE_EQ(m.performance(0.8), 0.8);
}

TEST(DvfsModel, MaxFrequencyInvertsBudget) {
  const DvfsModel m;
  EXPECT_NEAR(m.max_frequency_for(1.728), 1.2, 1e-9);
  // Clamped to the range edges.
  EXPECT_DOUBLE_EQ(m.max_frequency_for(100.0), 1.3);
  EXPECT_DOUBLE_EQ(m.max_frequency_for(0.0), 0.5);
}

TEST(DvfsModel, Validation) {
  DvfsModel::Params p;
  p.min_multiplier = 0.0;
  EXPECT_THROW((void)DvfsModel{p}, std::invalid_argument);
  p = {};
  p.max_multiplier = 0.4;  // below min
  EXPECT_THROW((void)DvfsModel{p}, std::invalid_argument);
  const DvfsModel m;
  EXPECT_THROW((void)m.power_multiplier(1.4), std::invalid_argument);
  EXPECT_THROW((void)m.performance(0.4), std::invalid_argument);
}

TEST(DvfsCappedMode, BoostsWithinRatingsOnly) {
  core::DataCenterConfig config;
  config.fleet.pdu_count = 2;
  core::DataCenter dc(config);
  workload::YahooTraceParams p;
  p.burst_degree = 3.0;
  p.burst_duration = Duration::minutes(10);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  const core::RunResult r =
      dc.run(trace, nullptr, {.mode = core::Mode::kDvfsCapped, .record = true});
  EXPECT_FALSE(r.tripped);
  EXPECT_GT(r.performance_factor, 1.0);
  // Frequency never exceeds the DVFS ceiling, loads never exceed ratings.
  EXPECT_LE(r.recorder.series("degree").max_value(), 1.3 + 1e-9);
  EXPECT_LE(r.recorder.series("dc_load_mw").max_value(),
            config.dc_rated().mw() + 1e-6);
  EXPECT_DOUBLE_EQ(r.ups_energy.j(), 0.0);
}

TEST(DvfsCappedMode, OrderingDvfsBelowCoreCappingBelowSprinting) {
  // The paper's hierarchy: DVFS capping < activating extra cores within
  // ratings < Data Center Sprinting. The cubic power law makes frequency
  // boost much costlier per unit performance than waking efficient cores.
  core::DataCenterConfig config;
  config.fleet.pdu_count = 2;
  core::DataCenter dc(config);
  workload::YahooTraceParams p;
  p.burst_degree = 3.0;
  p.burst_duration = Duration::minutes(10);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  const double dvfs =
      dc.run(trace, nullptr, {.mode = core::Mode::kDvfsCapped}).performance_factor;
  const double cores =
      dc.run(trace, nullptr, {.mode = core::Mode::kPowerCapped}).performance_factor;
  core::GreedyStrategy greedy;
  const double sprint = dc.run(trace, &greedy).performance_factor;
  EXPECT_LT(dvfs, cores);
  EXPECT_LT(cores, sprint);
  EXPECT_GT(dvfs, 1.0);
}

TEST(DvfsCappedMode, IdleDemandStaysAtNominalFrequency) {
  core::DataCenterConfig config;
  config.fleet.pdu_count = 2;
  core::DataCenter dc(config);
  TimeSeries trace;
  trace.push_back(Duration::zero(), 0.6);
  trace.push_back(Duration::minutes(5), 0.6);
  const core::RunResult r =
      dc.run(trace, nullptr, {.mode = core::Mode::kDvfsCapped, .record = true});
  EXPECT_DOUBLE_EQ(r.recorder.series("degree").max_value(), 1.0);
  EXPECT_NEAR(r.performance_factor, 1.0, 1e-9);
}

}  // namespace
}  // namespace dcs::compute
