// Deterministic fake shard worker for the dispatcher tests: a miniature
// sweep bench whose failure modes are scriptable from the command line. It
// speaks the exact worker contract the dispatcher relies on — key=value
// args, `shard=i/N`, `checkpoint=<dir>` (file at <dir>/<sweep>.ckpt.jsonl),
// exit 0 only when its slice is complete — and runs its grid through the
// real exp::run_sweep, so a restarted attempt resumes from the checkpoint
// exactly like a production bench.
//
// Args (all optional except checkpoint=):
//   checkpoint=<dir>      checkpoint directory (required)
//   shard=i/N             task slice (default 0/1)
//   sweep=<name>          sweep name (default "fake")
//   tasks=<n>             grid size (default 24)
//   sleep_ms=<ms>         per-task delay (default 0)
//   attempt_dir=<dir>     where the per-shard attempt counter lives; the
//                         *_attempts knobs below count against it
//   crash_attempts=<n>    attempts 1..n crash (_Exit(42)) after writing
//                         crash_rows new rows
//   crash_rows=<k>        rows written before a scripted crash (default 2)
//   stall_attempts=<n>    attempts 1..n hang forever after one row
//   fail_attempts=<n>     attempts 1..n exit 1 before doing any work
//   fail_shard=<i>        restrict the *_attempts failures to shard i
//                         (default -1 = all shards)
//   telemetry=<path>      write an obs::TelemetrySink stream (header, one
//                         sim instant per executed task, heartbeats, a
//                         folded stack, end marker) — the dispatcher's
//                         --telemetry contract
//
// Row values depend only on the task seed, so any mix of crashes, restarts
// and shards merges byte-identical to a clean single-process run.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "exp/runner.h"
#include "exp/sweep.h"
#include "obs/telemetry.h"
#include "util/config.h"

namespace {

dcs::exp::Shard parse_shard(const std::string& text) {
  dcs::exp::Shard shard;
  unsigned long index = 0;
  unsigned long count = 0;
  char trailing = '\0';
  if (std::sscanf(text.c_str(), "%lu/%lu%c", &index, &count, &trailing) != 2 ||
      count == 0 || index >= count) {
    std::cerr << "fake_worker: bad shard '" << text << "'\n";
    std::exit(2);
  }
  shard.index = static_cast<std::size_t>(index);
  shard.count = static_cast<std::size_t>(count);
  return shard;
}

/// Reads, increments and rewrites this shard's attempt counter. The
/// dispatcher never runs the same shard twice concurrently, so a plain
/// read-modify-write file is race-free.
int bump_attempt(const std::string& attempt_dir, std::size_t shard) {
  const std::string path =
      attempt_dir + "/shard_" + std::to_string(shard) + ".attempts";
  int attempts = 0;
  {
    std::ifstream in(path);
    in >> attempts;
  }
  ++attempts;
  std::ofstream out(path, std::ios::trunc);
  out << attempts << "\n";
  return attempts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs;
  const Config args = Config::from_args(
      std::span<const char* const>(argv + 1, static_cast<std::size_t>(argc - 1)));

  const std::string checkpoint_dir = args.get_string("checkpoint", "");
  if (checkpoint_dir.empty()) {
    std::cerr << "fake_worker: checkpoint=<dir> is required\n";
    return 2;
  }
  const std::string sweep_name = args.get_string("sweep", "fake");
  const std::size_t tasks =
      static_cast<std::size_t>(args.get_int("tasks", 24));
  const int sleep_ms = args.get_int("sleep_ms", 0);
  const exp::Shard shard = parse_shard(args.get_string("shard", "0/1"));

  const std::string attempt_dir = args.get_string("attempt_dir", "");
  const int attempt =
      attempt_dir.empty() ? 1 : bump_attempt(attempt_dir, shard.index);
  const int fail_shard = args.get_int("fail_shard", -1);
  const bool scripted =
      fail_shard < 0 || static_cast<std::size_t>(fail_shard) == shard.index;

  if (scripted && attempt <= args.get_int("fail_attempts", 0)) {
    std::cerr << "fake_worker: scripted failure on attempt " << attempt
              << "\n";
    return 1;
  }
  const bool crash_scripted =
      scripted && attempt <= args.get_int("crash_attempts", 0);
  const bool stall_scripted =
      scripted && attempt <= args.get_int("stall_attempts", 0);
  const int crash_rows = args.get_int("crash_rows", 2);

  exp::SweepSpec spec(sweep_name, /*base_seed=*/0xFA4EULL);
  std::vector<double> values(tasks);
  for (std::size_t i = 0; i < tasks; ++i) values[i] = static_cast<double>(i);
  spec.add_axis("x", values, 0);

  // Telemetry contract under test: the stream is valid after any scripted
  // crash (events flushed per line), heartbeats flow through the runner's
  // on_progress, and the end marker appears only on clean completion.
  std::unique_ptr<obs::TelemetrySink> telemetry;
  const std::string telemetry_file = args.get_string("telemetry", "");
  if (!telemetry_file.empty()) {
    obs::TelemetryOptions topt;
    topt.name = "fake_worker";
    topt.shard = args.get_string("shard", "0/1");
    telemetry = std::make_unique<obs::TelemetrySink>(telemetry_file, topt);
    telemetry->write_lane_name(obs::Domain::kSim, 0, "fake");
  }

  std::atomic<int> rows_this_attempt{0};
  exp::RunnerOptions options;
  options.threads = 1;  // deterministic row order within the slice
  options.checkpoint_path =
      checkpoint_dir + "/" + sweep_name + ".ckpt.jsonl";
  options.shard = shard;
  if (telemetry != nullptr) {
    options.on_progress = [&telemetry, sweep_name](std::size_t done,
                                                   std::size_t total) {
      telemetry->heartbeat(sweep_name, done, total);
    };
  }
  const exp::SweepRun run = exp::run_sweep(
      spec, {"value"},
      [&](const exp::SweepSpec::Task& task) {
        if (crash_scripted && rows_this_attempt.load() >= crash_rows) {
          std::_Exit(42);  // hard crash: no flush, no destructors
        }
        if (stall_scripted && rows_this_attempt.load() >= 1) {
          for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
        }
        if (sleep_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        }
        rows_this_attempt.fetch_add(1);
        if (telemetry != nullptr) {
          obs::TraceEvent event;
          event.domain = obs::Domain::kSim;
          event.phase = 'i';
          event.ts_us = static_cast<double>(task.index) * 1e6;
          event.cat = "fake";
          event.name = "task";
          event.args = {obs::arg("index", static_cast<double>(task.index))};
          telemetry->write(event);
        }
        // Keyed on the stable task seed: every attempt computes identical
        // bytes, the property the dispatcher's merge verifies.
        return std::vector<double>{
            static_cast<double>(task.seed % 10007) / 3.0};
      },
      options);

  if (telemetry != nullptr) {
    telemetry->write_stacks({{"fake;task", run.executed_tasks}});
    telemetry->close();
  }

  std::cout << "fake_worker: shard " << shard.index << "/" << shard.count
            << " attempt " << attempt << " executed " << run.executed_tasks
            << " task(s)\n";
  return 0;
}
