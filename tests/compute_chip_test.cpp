#include "compute/chip.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dcs::compute {
namespace {

TEST(Chip, PaperPowerNumbers) {
  // Intel SCC configuration (Section VI-A): 5 W idle chip, 2.5 W per core,
  // 48 cores -> 125 W fully utilized; 12 cores normal -> 35 W chip.
  const Chip chip;
  EXPECT_DOUBLE_EQ(chip.power(0, 0.0).w(), 5.0);
  EXPECT_DOUBLE_EQ(chip.peak_power().w(), 125.0);
  EXPECT_DOUBLE_EQ(chip.normal_peak_power().w(), 35.0);
}

TEST(Chip, PowerScalesWithUtilization) {
  const Chip chip;
  EXPECT_DOUBLE_EQ(chip.power(12, 0.5).w(), 5.0 + 2.5 * 6.0);
  EXPECT_DOUBLE_EQ(chip.power(12, 0.0).w(), 5.0);
}

TEST(Chip, ActiveIdleFraction) {
  Chip::Params p;
  p.active_idle_fraction = 0.4;
  const Chip chip(p);
  // Idle active core draws 40 % of 2.5 W.
  EXPECT_DOUBLE_EQ(chip.power(10, 0.0).w(), 5.0 + 2.5 * 10 * 0.4);
  // Full utilization unchanged.
  EXPECT_DOUBLE_EQ(chip.power(10, 1.0).w(), 5.0 + 2.5 * 10);
}

TEST(Chip, MaxSprintDegreeIsFour) {
  const Chip chip;
  EXPECT_DOUBLE_EQ(chip.max_sprint_degree(), 4.0);
}

TEST(Chip, CoresForDegreeRoundsUpAndClamps) {
  const Chip chip;
  EXPECT_EQ(chip.cores_for_degree(1.0), 12u);
  EXPECT_EQ(chip.cores_for_degree(1.01), 13u);
  EXPECT_EQ(chip.cores_for_degree(2.5), 30u);
  EXPECT_EQ(chip.cores_for_degree(4.0), 48u);
  EXPECT_EQ(chip.cores_for_degree(10.0), 48u);
  EXPECT_EQ(chip.cores_for_degree(0.0), 0u);
}

TEST(Chip, DegreeForCoresRoundTrips) {
  const Chip chip;
  EXPECT_DOUBLE_EQ(chip.degree_for_cores(12), 1.0);
  EXPECT_DOUBLE_EQ(chip.degree_for_cores(48), 4.0);
  EXPECT_DOUBLE_EQ(chip.degree_for_cores(30), 2.5);
  for (std::size_t n = 12; n <= 48; ++n) {
    EXPECT_EQ(chip.cores_for_degree(chip.degree_for_cores(n)), n);
  }
}

TEST(Chip, Validation) {
  Chip::Params p;
  p.normal_cores = 0;
  EXPECT_THROW((void)Chip{p}, std::invalid_argument);
  p = {};
  p.normal_cores = 49;
  EXPECT_THROW((void)Chip{p}, std::invalid_argument);
  p = {};
  p.active_idle_fraction = 1.5;
  EXPECT_THROW((void)Chip{p}, std::invalid_argument);
  const Chip chip;
  EXPECT_THROW((void)chip.power(49, 0.5), std::invalid_argument);
  EXPECT_THROW((void)chip.power(10, 1.5), std::invalid_argument);
  EXPECT_THROW((void)chip.degree_for_cores(49), std::invalid_argument);
}

}  // namespace
}  // namespace dcs::compute
