#include <gtest/gtest.h>

#include <stdexcept>

#include "econ/cost_model.h"
#include "econ/profitability.h"
#include "econ/revenue_model.h"
#include "workload/ms_trace.h"

namespace dcs::econ {
namespace {

TEST(CostModel, PaperPerServerFormula) {
  // $40 x 10(N-1) / 48 = $8.33(N-1) per server per month.
  const CostModel cost;
  EXPECT_NEAR(cost.monthly_per_server_usd(2.0), 40.0 * 10.0 / 48.0, 1e-9);
  EXPECT_NEAR(cost.monthly_per_server_usd(4.0), 25.0, 1e-9);
  EXPECT_DOUBLE_EQ(cost.monthly_per_server_usd(1.0), 0.0);
}

TEST(CostModel, PaperDataCenterTotal) {
  // $156,250 (N-1) for 18,750 servers.
  const CostModel cost;
  EXPECT_NEAR(cost.monthly_total_usd(2.0), 156250.0, 1.0);
  EXPECT_NEAR(cost.monthly_total_usd(4.0), 468750.0, 3.0);
}

TEST(CostModel, Validation) {
  const CostModel cost;
  EXPECT_THROW((void)cost.monthly_per_server_usd(0.5), std::invalid_argument);
  CostModel::Params p;
  p.amortization_months = 0;
  EXPECT_THROW((void)CostModel{p}, std::invalid_argument);
}

TEST(RevenueModel, RequestRevenueFormula) {
  // $7,900 x L x (M-1) x K.
  const RevenueModel rev;
  EXPECT_NEAR(rev.request_revenue_usd(5.0, 2.0, 3), 7900.0 * 5.0 * 1.0 * 3, 1e-6);
  EXPECT_DOUBLE_EQ(rev.request_revenue_usd(5.0, 1.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(rev.request_revenue_usd(5.0, 0.5, 3), 0.0);
}

TEST(RevenueModel, UserLossValueMatchesPaper) {
  // $7,900 x 43,200 x 0.2 % = $682,560 per month.
  const RevenueModel rev;
  EXPECT_NEAR(rev.monthly_user_loss_value_usd(), 682560.0, 1e-6);
}

TEST(RevenueModel, RetentionSaturatesAtAllUsers) {
  const RevenueModel rev;
  // (M-1) K / (Ut/U0) = 3 x 3 / 4 = 2.25 -> saturates at 1.
  EXPECT_NEAR(rev.retention_revenue_usd(4.0, 3, 4.0), 682560.0, 1e-6);
  // 0.5 x 1 / 4 = 0.125 of the user-loss value.
  EXPECT_NEAR(rev.retention_revenue_usd(1.5, 1, 4.0), 682560.0 * 0.125, 1e-6);
  EXPECT_DOUBLE_EQ(rev.retention_revenue_usd(1.0, 3, 4.0), 0.0);
}

TEST(RevenueModel, MoreUsersDiluteRetention) {
  // Fig. 5b vs 5a: with Ut = 6 U0 the retention term shrinks.
  const RevenueModel rev;
  EXPECT_GT(rev.retention_revenue_usd(2.0, 3, 4.0),
            rev.retention_revenue_usd(2.0, 3, 6.0));
}

TEST(Profitability, Fig5PointR100N4IsProfitable) {
  // Paper: "If the bursts are high and sufficiently utilize the additional
  // cores, sprinting can make a monthly profit of more than $0.4 M."
  const ProfitabilityAnalysis analysis{CostModel{}, RevenueModel{}};
  const ProfitBreakdown p = analysis.analyze(4.0, 5.0, 3, 1.0, 4.0);
  EXPECT_GT(p.profit_usd(), 400000.0);
  EXPECT_NEAR(p.cost_usd, 468750.0, 3.0);
}

TEST(Profitability, LowBurstsWithManyCoresHaveDiminishingProfit) {
  // Fig. 5a: "If the bursts are relatively low (e.g., 50%), the profit
  // becomes less with more additional cores" — the retention term saturates
  // (every user already affected) while the provisioning cost keeps growing
  // linearly, so the marginal profit of extra cores shrinks and eventually
  // goes negative.
  const ProfitabilityAnalysis analysis{CostModel{}, RevenueModel{}};
  const double p2 = analysis.analyze(2.0, 5.0, 3, 0.5, 4.0).profit_usd();
  const double p3 = analysis.analyze(3.0, 5.0, 3, 0.5, 4.0).profit_usd();
  const double p4 = analysis.analyze(4.0, 5.0, 3, 0.5, 4.0).profit_usd();
  EXPECT_LT(p4 - p3, p3 - p2);  // diminishing marginal profit
  // Once retention is saturated, each further core-provisioning step is a
  // straight loss.
  const double p6 = analysis.analyze(6.0, 5.0, 3, 0.5, 4.0).profit_usd();
  const double p8 = analysis.analyze(8.0, 5.0, 3, 0.5, 4.0).profit_usd();
  EXPECT_GT(p6, p8);
}

TEST(Profitability, RevenueGrowsWithUtilization) {
  const ProfitabilityAnalysis analysis{CostModel{}, RevenueModel{}};
  const double r50 = analysis.analyze(3.0, 5.0, 3, 0.50, 4.0).total_revenue_usd();
  const double r75 = analysis.analyze(3.0, 5.0, 3, 0.75, 4.0).total_revenue_usd();
  const double r100 = analysis.analyze(3.0, 5.0, 3, 1.0, 4.0).total_revenue_usd();
  EXPECT_LT(r50, r75);
  EXPECT_LT(r75, r100);
}

TEST(Profitability, TraceAnalysisScalesWithMonths) {
  const ProfitabilityAnalysis analysis{CostModel{}, RevenueModel{}};
  workload::MsDayTraceParams p;
  p.length = Duration::hours(6);
  const TimeSeries day = workload::generate_ms_day_trace(p);
  // Normalize so capacity 4 GB/s = 1.0 (the paper's revenue example).
  const TimeSeries demand = day.scaled(1.0 / 4.0);
  const ProfitBreakdown full = analysis.analyze_trace(demand, 4.0, 4.0, 0.25);
  const ProfitBreakdown half = analysis.analyze_trace(demand, 4.0, 4.0, 0.5);
  EXPECT_GT(full.request_revenue_usd, 0.0);
  EXPECT_NEAR(full.request_revenue_usd, 2.0 * half.request_revenue_usd, 1.0);
}

TEST(Profitability, TraceRevenueOrderOfPaperExample) {
  // The paper's month-long MS example earns ~$19 M with N=4, Ut=4U0. Our
  // synthetic day trace, repeated over a month, lands in the same order of
  // magnitude (millions to tens of millions).
  const ProfitabilityAnalysis analysis{CostModel{}, RevenueModel{}};
  const TimeSeries day = workload::generate_ms_day_trace();
  const TimeSeries demand = day.scaled(1.0 / 4.0);
  // A day of trace taken as 1/30 of a month.
  const ProfitBreakdown p = analysis.analyze_trace(demand, 4.0, 4.0, 1.0 / 30.0);
  EXPECT_GT(p.total_revenue_usd(), 1e6);
  EXPECT_LT(p.total_revenue_usd(), 1e8);
  EXPECT_GT(p.profit_usd(), 0.0);
}

TEST(Profitability, Validation) {
  const ProfitabilityAnalysis analysis{CostModel{}, RevenueModel{}};
  EXPECT_THROW((void)analysis.analyze(2.0, 5.0, 3, 0.0, 4.0), std::invalid_argument);
  TimeSeries t;
  t.push_back(Duration::zero(), 1.0);
  t.push_back(Duration::seconds(1), 1.0);
  EXPECT_THROW((void)analysis.analyze_trace(t, 2.0, 4.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dcs::econ
