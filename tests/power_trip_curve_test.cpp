#include "power/trip_curve.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dcs::power {
namespace {

TEST(TripCurve, PaperOperatingPoints) {
  // Section VII-D: "when the CB overload decreases from 60% to 30%,
  // the trip time increases from 1 minute to 4 minutes."
  const TripCurve curve;
  EXPECT_NEAR(curve.time_to_trip(1.6).sec(), 60.0, 1e-9);
  EXPECT_NEAR(curve.time_to_trip(1.3).sec(), 240.0, 1e-9);
}

TEST(TripCurve, NoTripAtOrBelowThreshold) {
  const TripCurve curve;
  EXPECT_TRUE(curve.time_to_trip(1.0).is_infinite());
  EXPECT_TRUE(curve.time_to_trip(1.05).is_infinite());
  EXPECT_TRUE(curve.time_to_trip(0.5).is_infinite());
  EXPECT_FALSE(curve.time_to_trip(1.06).is_infinite());
}

TEST(TripCurve, MagneticRegionTripsInstantly) {
  const TripCurve curve;
  EXPECT_DOUBLE_EQ(curve.time_to_trip(5.0).sec(), 0.016);
  EXPECT_DOUBLE_EQ(curve.time_to_trip(50.0).sec(), 0.016);
}

TEST(TripCurve, MonotonicallyDecreasingTripTime) {
  const TripCurve curve;
  Duration prev = Duration::infinity();
  for (double r = 1.06; r < 6.0; r += 0.05) {
    const Duration t = curve.time_to_trip(r);
    EXPECT_LE(t, prev) << "at ratio " << r;
    prev = t;
  }
}

TEST(TripCurve, InverseRecoversRatio) {
  const TripCurve curve;
  for (double r = 1.1; r < 4.5; r += 0.1) {
    const Duration t = curve.time_to_trip(r);
    EXPECT_NEAR(curve.max_ratio_for(t), r, 1e-9) << "at ratio " << r;
  }
}

TEST(TripCurve, MaxRatioForEdgeCases) {
  const TripCurve curve;
  EXPECT_DOUBLE_EQ(curve.max_ratio_for(Duration::infinity()), 1.05);
  // Extremely long holds converge to the no-trip ratio.
  EXPECT_DOUBLE_EQ(curve.max_ratio_for(Duration::hours(1000)), 1.05);
  // Holds at or under one cycle allow anything below the magnetic region.
  EXPECT_DOUBLE_EQ(curve.max_ratio_for(Duration::seconds(0.016)), 5.0);
  // Very short (but > one cycle) holds clamp at the magnetic threshold.
  EXPECT_DOUBLE_EQ(curve.max_ratio_for(Duration::seconds(0.1)), 5.0);
}

TEST(TripCurve, MaxRatioMonotoneInHold) {
  const TripCurve curve;
  double prev = 10.0;
  for (double sec = 1.0; sec < 10000.0; sec *= 2.0) {
    const double r = curve.max_ratio_for(Duration::seconds(sec));
    EXPECT_LE(r, prev);
    prev = r;
  }
}

TEST(TripCurve, ThermalCannotBeatMagnetic) {
  // Just under the magnetic threshold the thermal formula would give
  // 21.6/16 = 1.35 s > one cycle, so the floor only matters for curves with
  // a larger coefficient; verify the clamp anyway with a tiny coefficient.
  TripCurveParams p;
  p.thermal_coeff_s = 1e-4;
  const TripCurve curve(p);
  EXPECT_GE(curve.time_to_trip(4.9).sec(), p.magnetic_trip_time.sec());
}

TEST(TripCurve, ValidatesParams) {
  TripCurveParams p;
  p.no_trip_ratio = 0.9;
  EXPECT_THROW((void)TripCurve{p}, std::invalid_argument);
  p = {};
  p.magnetic_ratio = 1.0;
  EXPECT_THROW((void)TripCurve{p}, std::invalid_argument);
  p = {};
  p.thermal_coeff_s = 0.0;
  EXPECT_THROW((void)TripCurve{p}, std::invalid_argument);
  p = {};
  p.magnetic_trip_time = Duration::zero();
  EXPECT_THROW((void)TripCurve{p}, std::invalid_argument);
}

TEST(TripCurve, NegativeRatioRejected) {
  const TripCurve curve;
  EXPECT_THROW((void)curve.time_to_trip(-0.1), std::invalid_argument);
  EXPECT_THROW((void)curve.max_ratio_for(Duration::seconds(-1)), std::invalid_argument);
}

}  // namespace
}  // namespace dcs::power
