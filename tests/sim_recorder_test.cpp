#include "sim/recorder.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace dcs::sim {
namespace {

TEST(SimRecorder, RecordCreatesChannelsOnFirstUse) {
  Recorder rec;
  EXPECT_FALSE(rec.has("power"));
  rec.record("power", Duration::seconds(0), 100.0);
  rec.record("power", Duration::seconds(1), 150.0);
  ASSERT_TRUE(rec.has("power"));
  const TimeSeries& ts = rec.series("power");
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts[0].value, 100.0);
  EXPECT_DOUBLE_EQ(ts[1].value, 150.0);
}

TEST(SimRecorder, EqualTimeSamplesOverwriteTheLast) {
  Recorder rec;
  rec.record("soc", Duration::seconds(0), 1.0);
  rec.record("soc", Duration::seconds(5), 0.8);
  rec.record("soc", Duration::seconds(5), 0.6);
  const TimeSeries& ts = rec.series("soc");
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts[1].value, 0.6);
}

TEST(SimRecorder, EqualTimeOverwriteWorksOnTheFirstSample) {
  Recorder rec;
  rec.record("x", Duration::zero(), 1.0);
  rec.record("x", Duration::zero(), 2.0);
  const TimeSeries& ts = rec.series("x");
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_DOUBLE_EQ(ts[0].value, 2.0);
}

TEST(SimRecorder, DecreasingTimeThrows) {
  Recorder rec;
  rec.record("x", Duration::seconds(10), 1.0);
  EXPECT_THROW(rec.record("x", Duration::seconds(9), 2.0),
               std::invalid_argument);
}

TEST(SimRecorder, HandleRecordsLikeNameOverload) {
  Recorder by_name;
  Recorder by_handle;
  const Recorder::Handle h = by_handle.handle("power");
  for (int i = 0; i < 5; ++i) {
    by_name.record("power", Duration::seconds(i), 1.5 * i);
    by_handle.record(h, Duration::seconds(i), 1.5 * i);
  }
  // Same-tick overwrite semantics must hold through the handle too.
  by_name.record("power", Duration::seconds(4), 99.0);
  by_handle.record(h, Duration::seconds(4), 99.0);
  ASSERT_EQ(by_name.series("power").size(), by_handle.series("power").size());
  for (std::size_t i = 0; i < by_name.series("power").size(); ++i) {
    EXPECT_EQ(by_name.series("power")[i].time,
              by_handle.series("power")[i].time);
    EXPECT_EQ(by_name.series("power")[i].value,
              by_handle.series("power")[i].value);
  }
}

TEST(SimRecorder, UnboundHandleThrows) {
  Recorder rec;
  EXPECT_THROW(rec.record(Recorder::Handle{}, Duration::zero(), 1.0),
               std::invalid_argument);
}

TEST(SimRecorder, UnknownChannelThrows) {
  const Recorder rec;
  EXPECT_THROW(static_cast<void>(rec.series("nope")), std::invalid_argument);
}

TEST(SimRecorder, ChannelsAreSortedAndClearDropsThem) {
  Recorder rec;
  rec.record("zeta", Duration::zero(), 0.0);
  rec.record("alpha", Duration::zero(), 0.0);
  const std::vector<std::string> names = rec.channels();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
  rec.clear();
  EXPECT_TRUE(rec.channels().empty());
  EXPECT_FALSE(rec.has("alpha"));
}

}  // namespace
}  // namespace dcs::sim
