// SLO-driven sprinting: the p99 violation latch with hysteresis, the
// pressure-scaled bound, the energy-reserve arbitration against admission
// control, and the closed loop (serving window p99 -> observe_latency ->
// sprint bound) beating a no-sprint baseline end to end.
#include "core/slo_strategy.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/datacenter.h"
#include "serving/serving_layer.h"
#include "util/time_series.h"
#include "workload/yahoo_trace.h"

namespace dcs::core {
namespace {

SprintContext burst_context(double demand = 2.0) {
  SprintContext ctx;
  ctx.demand = demand;
  ctx.max_degree = 4.0;
  ctx.max_demand_in_burst = demand;
  ctx.remaining_energy_fraction = 1.0;
  return ctx;
}

TEST(SloStrategy, ValidatesParams) {
  EXPECT_THROW((void)SloSprintStrategy({.target_p99_s = 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)SloSprintStrategy({.gain = -1.0}), std::invalid_argument);
  EXPECT_THROW((void)SloSprintStrategy({.reserve_fraction = 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)SloSprintStrategy({.hysteresis = 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)SloSprintStrategy({.hysteresis = 1.5}),
               std::invalid_argument);
  EXPECT_EQ(SloSprintStrategy().name(), "slo");
}

TEST(SloStrategy, OnsetIsTriggeredByP99NotByDemand) {
  SloSprintStrategy slo({.target_p99_s = 0.25});
  // A burst is in progress but the tail still meets the SLO: queueing
  // absorbs it, the strategy holds the no-sprint bound.
  slo.observe_latency(0.100);
  EXPECT_FALSE(slo.violating());
  EXPECT_DOUBLE_EQ(slo.upper_bound(burst_context(3.0)), 1.0);

  // The p99 crosses the target: the latch opens and the bound scales with
  // the violation pressure — and covers at least the demand so the sprint
  // is not starved the moment it starts.
  slo.observe_latency(0.500);  // pressure = 1.0
  EXPECT_TRUE(slo.violating());
  EXPECT_DOUBLE_EQ(slo.last_p99_s(), 0.500);
  const double bound = slo.upper_bound(burst_context(2.0));
  EXPECT_GE(bound, 2.0);  // at least the demand
  EXPECT_LE(bound, 4.0);  // never above the hardware maximum
  // gain 4 x pressure 1 -> 1 + 4 = 5, clamped to max_degree.
  EXPECT_DOUBLE_EQ(bound, 4.0);

  // Higher pressure under a lazier demand still sprints to the pressure.
  slo.observe_latency(0.300);  // pressure = 0.2 -> 1 + 0.8
  EXPECT_DOUBLE_EQ(slo.upper_bound(burst_context(1.2)), 1.8);
}

TEST(SloStrategy, HysteresisPreventsChatter) {
  SloSprintStrategy slo({.target_p99_s = 0.25, .hysteresis = 0.9});
  slo.observe_latency(0.400);
  EXPECT_TRUE(slo.violating());

  // Recovered below target but above hysteresis x target (0.225): the
  // latch holds, the strategy keeps sprinting through the gray zone.
  slo.observe_latency(0.240);
  EXPECT_TRUE(slo.violating());
  EXPECT_GE(slo.upper_bound(burst_context(1.5)), 1.5);

  // Below the release threshold: the latch drops back to bound 1.
  slo.observe_latency(0.200);
  EXPECT_FALSE(slo.violating());
  EXPECT_DOUBLE_EQ(slo.upper_bound(burst_context(1.5)), 1.0);

  // A fresh burst resets nothing it should not: the latch re-opens on the
  // next violation.
  slo.on_burst_start();
  slo.observe_latency(0.300);
  EXPECT_TRUE(slo.violating());
}

TEST(SloStrategy, EnergyReserveCedesToAdmissionControl) {
  SloSprintStrategy slo({.target_p99_s = 0.25, .reserve_fraction = 0.10});
  slo.observe_latency(1.0);  // heavy violation
  EXPECT_TRUE(slo.violating());

  SprintContext ctx = burst_context(2.0);
  ctx.remaining_energy_fraction = 0.05;  // below the reserve floor
  // Out of budget: stop sprinting no matter how bad the tail is — from
  // here the system sheds load (admission control) instead.
  EXPECT_DOUBLE_EQ(slo.upper_bound(ctx), 1.0);

  ctx.remaining_energy_fraction = 0.5;
  EXPECT_GT(slo.upper_bound(ctx), 1.0);

  // Negative p99 input is treated as no signal, not a violation.
  SloSprintStrategy fresh;
  fresh.observe_latency(-1.0);
  EXPECT_FALSE(fresh.violating());
  EXPECT_DOUBLE_EQ(fresh.last_p99_s(), 0.0);
}

TEST(SloStrategy, ClosedLoopBeatsNoSprintOnServingP99) {
  // End-to-end: serving layer rides the controller's engine, its window
  // p99 feeds the strategy, the strategy's bound reshapes the service
  // rates. The SLO run must beat the no-sprint run on the serving tail —
  // the mechanism fig12 sweeps.
  workload::YahooTraceParams yp;
  yp.burst_degree = 3.2;
  yp.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(yp);

  DataCenterConfig config;
  config.fleet.pdu_count = 2;

  const auto serving_p99_ms = [&](bool use_slo) {
    serving::ServingParams sp;
    sp.demand = &trace;
    serving::ServingLayer serving(sp);
    SloSprintStrategy slo({.target_p99_s = 0.25});
    ConstantBoundStrategy nosprint(1.0, "nosprint");
    Strategy* strategy = &nosprint;
    if (use_slo) {
      strategy = &slo;
      serving.set_slo_callback([&slo](const serving::ServingStats& stats) {
        slo.observe_latency(stats.p99_s);
      });
    }
    DataCenter dc(config);
    RunOptions opts;
    opts.components = {&serving};
    opts.on_step = [&serving](Duration, Duration, const StepResult& step) {
      serving.set_capacity_degree(step.degree);
    };
    const RunResult run = dc.run(trace, strategy, opts);
    EXPECT_FALSE(run.tripped);
    if (use_slo) {
      EXPECT_GT(run.sprint_time.sec(), 0.0);
    }
    return serving.latency().p99() * 1e3;
  };

  const double slo_p99 = serving_p99_ms(true);
  const double nosprint_p99 = serving_p99_ms(false);
  EXPECT_LT(slo_p99, nosprint_p99);
  // The 3.2x burst floods an unsprinted plant: its tail is deep into the
  // fluid-overload regime, while the SLO sprint keeps serving. The margin
  // is well over the histogram's bucket resolution, not a rounding fluke.
  EXPECT_GT(nosprint_p99, 1.2 * slo_p99);
}

}  // namespace
}  // namespace dcs::core
