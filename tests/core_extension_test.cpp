// Tests for the extension features built on top of the paper's design:
// the budget-paced planner (the paper's optimization future work), the
// fully-online adaptive strategy, supply-disturbance handling, and the
// parent/child CB budget allocator.
#include <gtest/gtest.h>

#include <vector>

#include "core/budget_paced_strategy.h"
#include "core/cb_budget.h"
#include "core/datacenter.h"
#include "core/online_strategy.h"
#include "core/oracle.h"
#include "power/generator.h"
#include "power/lifetime.h"
#include "workload/burst.h"
#include "workload/ms_trace.h"
#include "workload/yahoo_trace.h"

namespace dcs::core {
namespace {

DataCenterConfig small_config() {
  DataCenterConfig c;
  c.fleet.pdu_count = 2;
  return c;
}

// ---------------------------------------------------------------------------
// BudgetPacedStrategy
// ---------------------------------------------------------------------------

TEST(BudgetPaced, ShortBurstSprintsFreely) {
  const DataCenterConfig config = small_config();
  workload::YahooTraceParams p;
  p.burst_duration = Duration::minutes(1);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  BudgetPacedStrategy planner(trace, config);
  // A one-minute burst cannot drain the pools: the plan runs uncapped
  // enough to cover the demand (degree for demand 3.2).
  EXPECT_GE(planner.planned_cap(), 3.2);
  EXPECT_NEAR(planner.planned_duration().min(), 1.0, 0.2);
}

TEST(BudgetPaced, LongBurstYieldsInteriorCap) {
  const DataCenterConfig config = small_config();
  workload::YahooTraceParams p;
  p.burst_degree = 3.2;
  p.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  BudgetPacedStrategy planner(trace, config);
  EXPECT_LT(planner.planned_cap(), 3.5);
  EXPECT_GT(planner.planned_cap(), 1.5);
}

TEST(BudgetPaced, TracksOracleWithoutSimulating) {
  // The planner's closed-form cap should land within a few percent of the
  // Oracle's exhaustively-searched performance on long bursts.
  const DataCenterConfig config = small_config();
  DataCenter dc(config);
  for (double degree : {2.8, 3.2, 3.6}) {
    workload::YahooTraceParams p;
    p.burst_degree = degree;
    p.burst_duration = Duration::minutes(15);
    const TimeSeries trace = workload::generate_yahoo_trace(p);
    BudgetPacedStrategy planner(trace, config);
    const RunResult planned = dc.run(trace, &planner);
    const OracleResult oracle = oracle_search(dc, trace, 2);
    EXPECT_GT(planned.performance_factor, oracle.best_performance * 0.95)
        << "degree " << degree;
    // And clearly above Greedy (which exhausts mid-burst).
    GreedyStrategy greedy;
    EXPECT_GT(planned.performance_factor,
              dc.run(trace, &greedy).performance_factor)
        << "degree " << degree;
  }
}

TEST(BudgetPaced, BiggerPoolsRaiseTheCap) {
  workload::YahooTraceParams p;
  p.burst_degree = 3.2;
  p.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  double prev = 1.0;
  for (double ah : {0.25, 0.5, 1.0, 4.0}) {
    DataCenterConfig config = small_config();
    config.battery_per_server.capacity = Charge::amp_hours(ah);
    BudgetPacedStrategy planner(trace, config);
    EXPECT_GE(planner.planned_cap(), prev - 1e-9) << "capacity " << ah;
    prev = planner.planned_cap();
  }
}

TEST(BudgetPaced, NoBurstMeansNoCap) {
  TimeSeries flat;
  flat.push_back(Duration::zero(), 0.5);
  flat.push_back(Duration::minutes(10), 0.5);
  BudgetPacedStrategy planner(flat, small_config());
  EXPECT_DOUBLE_EQ(planner.planned_cap(), 1.0);
}

TEST(BudgetPaced, Validation) {
  EXPECT_THROW((void)BudgetPacedStrategy(TimeSeries{}, small_config()),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// OnlineAdaptiveStrategy
// ---------------------------------------------------------------------------

UpperBoundTable small_table(DataCenter& dc) {
  const std::vector<Duration> durations = {
      Duration::minutes(1), Duration::minutes(8), Duration::minutes(15),
      Duration::minutes(25)};
  const std::vector<double> degrees = {2.0, 2.6, 3.2, 3.6};
  return build_upper_bound_table(dc, durations, degrees,
                                 workload::YahooTraceParams{}, 4);
}

TEST(OnlineAdaptive, RunsWithoutOracleInputsAndBeatsNothing) {
  DataCenter dc(small_config());
  const UpperBoundTable table = small_table(dc);
  OnlineAdaptiveStrategy online(&table);
  workload::YahooTraceParams p;
  p.burst_degree = 3.2;
  p.burst_duration = Duration::minutes(15);
  const RunResult r = dc.run(workload::generate_yahoo_trace(p), &online);
  EXPECT_GT(r.performance_factor, 1.3);
  EXPECT_FALSE(r.tripped);
}

TEST(OnlineAdaptive, LearnsAcrossRepeatedBursts) {
  // Two identical bursts in one trace: the strategy should handle the
  // second at least as well as a cold-start Greedy run, because the first
  // burst taught it the duration.
  DataCenter dc(small_config());
  const UpperBoundTable table = small_table(dc);

  // Build a 70-minute trace with two 15-minute 3.2x bursts.
  TimeSeries trace;
  {
    workload::YahooTraceParams p;
    p.length = Duration::minutes(70);
    p.burst_degree = 3.2;
    p.burst_duration = Duration::minutes(15);
    p.burst_start = Duration::minutes(5);
    TimeSeries once = workload::generate_yahoo_trace(p);
    trace = workload::inject_burst(once, Duration::minutes(40),
                                   Duration::minutes(15), 3.2);
  }
  OnlineAdaptiveStrategy online(&table);
  const RunResult r = dc.run(trace, &online, {.record = true});
  EXPECT_FALSE(r.tripped);
  EXPECT_GE(online.predictor().bursts_completed(), 2u);
  // Learned duration is close to the real 15 minutes.
  EXPECT_NEAR(online.predictor().predicted_duration().min(), 15.0, 3.0);
  GreedyStrategy greedy;
  const RunResult g = dc.run(trace, &greedy);
  EXPECT_GT(r.performance_factor, g.performance_factor);
}

TEST(OnlineAdaptive, RequiresTable) {
  EXPECT_THROW((void)OnlineAdaptiveStrategy(nullptr), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Supply disturbances
// ---------------------------------------------------------------------------

TimeSeries dip(Duration at, Duration width, double level, Duration total) {
  TimeSeries s;
  s.push_back(Duration::zero(), 1.0);
  s.push_back(at, level);
  s.push_back(at + width, 1.0);
  s.push_back(total, 1.0);
  return s;
}

TEST(SupplyDisturbance, SprintAbortsImmediately) {
  DataCenter dc(small_config());
  workload::YahooTraceParams p;
  p.burst_degree = 3.0;
  p.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  // The feed dips to 70 % three minutes into the burst.
  const TimeSeries supply =
      dip(Duration::minutes(8), Duration::minutes(2), 0.7, trace.end_time());
  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy,
                             {.record = true, .supply_fraction = &supply});
  EXPECT_FALSE(r.tripped);
  const TimeSeries& degree = r.recorder.series("degree");
  // Sprinting before the dip, shed to normal cores during it.
  EXPECT_GT(degree.at(Duration::minutes(7)), 1.5);
  EXPECT_DOUBLE_EQ(degree.at(Duration::minutes(8.5)), 1.0);
  EXPECT_DOUBLE_EQ(degree.at(Duration::minutes(9.9)), 1.0);
}

TEST(SupplyDisturbance, SprintAbortsImmediatelyEvenWithGenerator) {
  // Same mid-burst dip, but with backup generation available. The terminal
  // rule still applies — a compromised feed ends the sprint on the spot and
  // the generator only protects the baseline load; it must never be used to
  // keep sprinting through the disturbance.
  DataCenterConfig config = small_config();
  DataCenter dc(config);
  workload::YahooTraceParams p;
  p.burst_degree = 3.0;
  p.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  const TimeSeries supply =
      dip(Duration::minutes(8), Duration::minutes(2), 0.7, trace.end_time());
  power::DieselGenerator generator(
      "gen", {.rated = config.dc_rated(), .start_delay = Duration::seconds(45)});
  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy,
                             {.record = true,
                              .supply_fraction = &supply,
                              .generator = &generator});
  EXPECT_FALSE(r.tripped);
  const TimeSeries& degree = r.recorder.series("degree");
  EXPECT_GT(degree.at(Duration::minutes(7)), 1.5);
  EXPECT_DOUBLE_EQ(degree.at(Duration::minutes(8.5)), 1.0);
  // Even after the generator is online (start delay 45 s), the sprint stays
  // terminated for the rest of the burst.
  EXPECT_DOUBLE_EQ(degree.at(Duration::minutes(9.9)), 1.0);
}

TEST(SupplyDisturbance, SharedGeneratorIsResetBetweenRuns) {
  // RunOptions::generator is caller-owned and reused across runs; run()
  // resets it to a stopped, fault-free state each time, so repeating a run
  // with the same generator object gives identical results.
  DataCenterConfig config = small_config();
  DataCenter dc(config);
  TimeSeries trace;
  trace.push_back(Duration::zero(), 0.98);
  trace.push_back(Duration::minutes(20), 0.98);
  TimeSeries supply;
  supply.push_back(Duration::zero(), 1.0);
  supply.push_back(Duration::minutes(5), 0.5);
  supply.push_back(Duration::minutes(20), 0.5);
  power::DieselGenerator generator(
      "gen", {.rated = config.dc_rated(), .start_delay = Duration::seconds(45)});
  GreedyStrategy greedy;
  const RunOptions options{.supply_fraction = &supply, .generator = &generator};
  const RunResult a = dc.run(trace, &greedy, options);
  EXPECT_TRUE(generator.running());  // left running by the first run...
  const RunResult b = dc.run(trace, &greedy, options);
  // ...yet the second run starts from scratch and matches exactly.
  EXPECT_DOUBLE_EQ(a.performance_factor, b.performance_factor);
  EXPECT_DOUBLE_EQ(a.ups_energy.j(), b.ups_energy.j());
  EXPECT_DOUBLE_EQ(a.min_ups_soc, b.min_ups_soc);
}

TEST(SupplyDisturbance, UpsBridgesTheDip) {
  DataCenter dc(small_config());
  // Demand at capacity; a 60 % dip cannot carry it from the grid alone.
  TimeSeries trace;
  trace.push_back(Duration::zero(), 0.98);
  trace.push_back(Duration::minutes(12), 0.98);
  const TimeSeries supply =
      dip(Duration::minutes(5), Duration::minutes(2), 0.6, trace.end_time());
  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy,
                             {.record = true, .supply_fraction = &supply});
  // Service is maintained through the dip on battery power...
  const TimeSeries& achieved = r.recorder.series("achieved");
  EXPECT_NEAR(achieved.at(Duration::minutes(6)), 0.98, 1e-6);
  // ...and the UPS visibly discharged.
  const TimeSeries& ups = r.recorder.series("ups_mw");
  EXPECT_GT(ups.at(Duration::minutes(6)), 0.0);
  EXPECT_LT(r.min_ups_soc, 1.0);
}

TEST(SupplyDisturbance, GeneratorTakesOver) {
  DataCenterConfig config = small_config();
  DataCenter dc(config);
  TimeSeries trace;
  trace.push_back(Duration::zero(), 0.98);
  trace.push_back(Duration::minutes(20), 0.98);
  // Long 50 % derating from minute 5 to the end.
  TimeSeries supply;
  supply.push_back(Duration::zero(), 1.0);
  supply.push_back(Duration::minutes(5), 0.5);
  supply.push_back(Duration::minutes(20), 0.5);
  power::DieselGenerator generator(
      "gen", {.rated = config.dc_rated(), .start_delay = Duration::seconds(45)});
  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy,
                             {.record = true,
                              .supply_fraction = &supply,
                              .generator = &generator});
  EXPECT_TRUE(generator.running());
  // With the generator online the UPS stops discharging shortly after the
  // start delay.
  const TimeSeries& ups = r.recorder.series("ups_mw");
  EXPECT_GT(ups.at(Duration::seconds(5 * 60 + 20)), 0.0);   // bridging
  EXPECT_DOUBLE_EQ(ups.at(Duration::minutes(7)), 0.0);      // generator on
  EXPECT_NEAR(r.recorder.series("achieved").at(Duration::minutes(15)), 0.98,
              1e-6);
}

TEST(SupplyDisturbance, HealthySupplySeriesIsNoOp) {
  DataCenter dc(small_config());
  const TimeSeries trace = workload::generate_yahoo_trace();
  TimeSeries healthy;
  healthy.push_back(Duration::zero(), 1.0);
  healthy.push_back(trace.end_time(), 1.0);
  GreedyStrategy greedy;
  const RunResult with = dc.run(trace, &greedy,
                                {.supply_fraction = &healthy});
  const RunResult without = dc.run(trace, &greedy);
  EXPECT_DOUBLE_EQ(with.performance_factor, without.performance_factor);
}

// ---------------------------------------------------------------------------
// CB budget allocation (Section V-B parent/child rule)
// ---------------------------------------------------------------------------

TEST(CbBudget, EveryoneFitsGetsTheirAsk) {
  const std::vector<CbBudgetRequest> kids = {
      {Power::kilowatts(10), Power::kilowatts(15)},
      {Power::kilowatts(20), Power::kilowatts(15)},
  };
  const auto grants = allocate_cb_budget(Power::kilowatts(100), kids);
  EXPECT_DOUBLE_EQ(grants[0].kw(), 10.0);
  EXPECT_DOUBLE_EQ(grants[1].kw(), 15.0);  // capped by its own breaker
}

TEST(CbBudget, ParentBoundSharedMaxMinFairly) {
  const std::vector<CbBudgetRequest> kids = {
      {Power::kilowatts(5), Power::kilowatts(30)},
      {Power::kilowatts(20), Power::kilowatts(30)},
      {Power::kilowatts(30), Power::kilowatts(30)},
  };
  const auto grants = allocate_cb_budget(Power::kilowatts(35), kids);
  // Child 0 is below the water level and gets its full ask; the other two
  // split the remaining 30 kW equally.
  EXPECT_DOUBLE_EQ(grants[0].kw(), 5.0);
  EXPECT_DOUBLE_EQ(grants[1].kw(), 15.0);
  EXPECT_DOUBLE_EQ(grants[2].kw(), 15.0);
}

TEST(CbBudget, SumNeverExceedsParent) {
  const std::vector<CbBudgetRequest> kids = {
      {Power::kilowatts(12), Power::kilowatts(14)},
      {Power::kilowatts(9), Power::kilowatts(10)},
      {Power::kilowatts(25), Power::kilowatts(18)},
      {Power::kilowatts(2), Power::kilowatts(20)},
  };
  for (double parent_kw : {5.0, 20.0, 33.0, 100.0}) {
    const auto grants = allocate_cb_budget(Power::kilowatts(parent_kw), kids);
    Power total = Power::zero();
    for (std::size_t i = 0; i < grants.size(); ++i) {
      total += grants[i];
      EXPECT_LE(grants[i],
                std::min(kids[i].demand, kids[i].child_allow) + Power::watts(1));
    }
    EXPECT_LE(total, Power::kilowatts(parent_kw) + Power::watts(1));
  }
}

TEST(CbBudget, ZeroParentGrantsNothing) {
  const std::vector<CbBudgetRequest> kids = {
      {Power::kilowatts(10), Power::kilowatts(10)}};
  const auto grants = allocate_cb_budget(Power::zero(), kids);
  EXPECT_DOUBLE_EQ(grants[0].w(), 0.0);
}

TEST(CbBudget, EmptyChildrenOk) {
  EXPECT_TRUE(allocate_cb_budget(Power::kilowatts(1), {}).empty());
}

// ---------------------------------------------------------------------------
// End-to-end battery lifetime neutrality (Sections III-B / V-D)
// ---------------------------------------------------------------------------

TEST(Lifetime, SimulatedBurstyDayIsLifetimeNeutralForLfp) {
  // Serve a day of MS-style traffic (capacity = 4 GB/s) with greedy
  // sprinting, extrapolate the measured discharge pattern to a month, and
  // check it against the cycle-life model — the paper's argument that
  // sprinting needs no extra battery provisioning.
  DataCenter dc(small_config());
  const TimeSeries day =
      workload::generate_ms_day_trace().scaled(1.0 / 4.0);
  GreedyStrategy greedy;
  const RunResult r = dc.run(day, &greedy);

  ASSERT_GT(r.ups_discharge_events, 0u);
  const double events_per_month =
      static_cast<double>(r.ups_discharge_events) * 30.0;
  const double avg_depth =
      r.ups_equivalent_cycles / static_cast<double>(r.ups_discharge_events);
  EXPECT_LT(avg_depth, 0.6);  // bursts drain a fraction, not full cycles

  const power::BatteryLifetimeModel lfp(power::Chemistry::kLfp);
  EXPECT_TRUE(lfp.lifetime_neutral(events_per_month, std::max(avg_depth, 0.01)));
}

}  // namespace
}  // namespace dcs::core
