#include "core/controller.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/config.h"
#include "core/strategy.h"

namespace dcs::core {
namespace {

DataCenterConfig small_config() {
  DataCenterConfig c;
  c.fleet.pdu_count = 2;  // results are invariant to the PDU count
  return c;
}

/// Owns every substrate plus a controller, mirroring DataCenter's wiring,
/// but exposed for direct stepping in tests.
struct Rig {
  explicit Rig(const DataCenterConfig& config, Strategy* strategy, Mode mode)
      : fleet(config.fleet),
        topology(config.topology_params()),
        tes(config.has_tes ? std::make_unique<thermal::TesTank>(
                                 "tes", config.tes_params())
                           : nullptr),
        cooling(config.cooling_params(tes.get())),
        room(config.room_params()),
        controller(config,
                   {&fleet, &topology, &cooling, tes.get(), &room},
                   strategy, mode) {}

  StepResult run_for(double demand, int seconds, Duration start = Duration::zero()) {
    StepResult last;
    for (int i = 0; i < seconds; ++i) {
      last = controller.step(start + Duration::seconds(i), demand,
                             Duration::seconds(1));
    }
    return last;
  }

  compute::Fleet fleet;
  power::PowerTopology topology;
  std::unique_ptr<thermal::TesTank> tes;
  thermal::CoolingPlant cooling;
  thermal::RoomModel room;
  SprintingController controller;
};

TEST(Controller, NormalOperationBelowCapacity) {
  const DataCenterConfig config = small_config();
  GreedyStrategy greedy;
  Rig rig(config, &greedy, Mode::kControlled);
  const StepResult r = rig.run_for(0.95, 10);
  EXPECT_EQ(r.phase, SprintPhase::kNormal);
  EXPECT_DOUBLE_EQ(r.achieved, 0.95);
  EXPECT_DOUBLE_EQ(r.degree, 1.0);
  EXPECT_DOUBLE_EQ(r.ups_power.w(), 0.0);
}

TEST(Controller, SprintActivatesMoreCores) {
  const DataCenterConfig config = small_config();
  GreedyStrategy greedy;
  Rig rig(config, &greedy, Mode::kControlled);
  const StepResult r = rig.run_for(2.0, 5);
  EXPECT_GT(r.degree, 1.0);
  EXPECT_GT(r.active_cores, 12u);
  EXPECT_NEAR(r.achieved, 2.0, 1e-9);
  EXPECT_NE(r.phase, SprintPhase::kNormal);
}

TEST(Controller, Phase1UsesCbToleranceOnly) {
  const DataCenterConfig config = small_config();
  GreedyStrategy greedy;
  Rig rig(config, &greedy, Mode::kControlled);
  // Mild sprint the fresh breakers can carry alone.
  const StepResult r = rig.run_for(1.3, 3);
  EXPECT_EQ(r.phase, SprintPhase::kCbOverload);
  EXPECT_DOUBLE_EQ(r.ups_power.w(), 0.0);
}

TEST(Controller, Phase2UpsKicksInWhenCbBoundShrinks) {
  const DataCenterConfig config = small_config();
  GreedyStrategy greedy;
  Rig rig(config, &greedy, Mode::kControlled);
  // A deep sprint heats the breakers until the governor hands the excess to
  // the UPS banks.
  StepResult r{};
  bool saw_ups = false;
  for (int i = 0; i < 180 && !saw_ups; ++i) {
    r = rig.controller.step(Duration::seconds(i), 3.0, Duration::seconds(1));
    saw_ups = r.ups_power > Power::watts(1.0);
  }
  EXPECT_TRUE(saw_ups);
  EXPECT_EQ(r.phase, SprintPhase::kUpsAssist);
}

TEST(Controller, Phase3TesActivatesOnSchedule) {
  const DataCenterConfig config = small_config();
  GreedyStrategy greedy;
  Rig rig(config, &greedy, Mode::kControlled);
  const Duration activation = config.tes_activation_time();
  Duration first_tes = Duration::infinity();
  SprintPhase phase_at_activation = SprintPhase::kNormal;
  for (int i = 0; i < 400; ++i) {
    const StepResult r =
        rig.controller.step(Duration::seconds(i), 3.0, Duration::seconds(1));
    if (r.tes_heat > Power::zero() && first_tes.is_infinite()) {
      first_tes = Duration::seconds(i);
      phase_at_activation = r.phase;
    }
  }
  ASSERT_FALSE(first_tes.is_infinite());
  EXPECT_NEAR(first_tes.sec(), activation.sec(), 2.0);
  EXPECT_EQ(phase_at_activation, SprintPhase::kTesCooling);
}

TEST(Controller, ControlledSprintNeverTrips) {
  const DataCenterConfig config = small_config();
  GreedyStrategy greedy;
  Rig rig(config, &greedy, Mode::kControlled);
  for (int i = 0; i < 1800; ++i) {
    const StepResult r = rig.controller.step(Duration::seconds(i), 3.2,
                                             Duration::seconds(1));
    ASSERT_FALSE(r.tripped);
  }
  EXPECT_FALSE(rig.topology.dc_breaker().tripped());
  EXPECT_FALSE(rig.topology.pdus().front().breaker().tripped());
  EXPECT_LT(rig.topology.dc_breaker().thermal_state(), 1.0);
}

TEST(Controller, RoomStaysBelowThresholdUnderControl) {
  const DataCenterConfig config = small_config();
  GreedyStrategy greedy;
  Rig rig(config, &greedy, Mode::kControlled);
  for (int i = 0; i < 1800; ++i) {
    rig.controller.step(Duration::seconds(i), 3.2, Duration::seconds(1));
    ASSERT_FALSE(rig.room.over_threshold());
  }
}

TEST(Controller, SprintEndsWhenEnergyExhausted) {
  const DataCenterConfig config = small_config();
  GreedyStrategy greedy;
  Rig rig(config, &greedy, Mode::kControlled);
  // Long flat-out sprint: eventually the ESDs drain and the controller
  // drops back to the normal core count even though demand persists.
  StepResult r{};
  for (int i = 0; i < 1800; ++i) {
    r = rig.controller.step(Duration::seconds(i), 3.5, Duration::seconds(1));
  }
  EXPECT_DOUBLE_EQ(r.degree, 1.0);
  EXPECT_DOUBLE_EQ(r.achieved, 1.0);
}

TEST(Controller, SprintRestartsOnNextBurst) {
  const DataCenterConfig config = small_config();
  GreedyStrategy greedy;
  Rig rig(config, &greedy, Mode::kControlled);
  // Exhaust the sprint.
  for (int i = 0; i < 1800; ++i) {
    rig.controller.step(Duration::seconds(i), 3.5, Duration::seconds(1));
  }
  // Recover during a low-demand window (ESDs recharge a little).
  for (int i = 1800; i < 2400; ++i) {
    rig.controller.step(Duration::seconds(i), 0.5, Duration::seconds(1));
  }
  // A fresh burst sprints again (the terminated flag resets).
  const StepResult r = rig.controller.step(Duration::seconds(2400), 2.0,
                                           Duration::seconds(1));
  EXPECT_GT(r.degree, 1.0);
}

TEST(Controller, RechargeRefillsUpsDuringLull) {
  const DataCenterConfig config = small_config();
  GreedyStrategy greedy;
  Rig rig(config, &greedy, Mode::kControlled);
  // Drain some UPS energy with a sprint.
  for (int i = 0; i < 300; ++i) {
    rig.controller.step(Duration::seconds(i), 3.0, Duration::seconds(1));
  }
  const Energy drained = rig.topology.ups_available();
  // Idle demand below the recharge threshold.
  for (int i = 300; i < 900; ++i) {
    rig.controller.step(Duration::seconds(i), 0.5, Duration::seconds(1));
  }
  EXPECT_GT(rig.topology.ups_available(), drained);
}

TEST(Controller, RechargeNeverOverloadsBreakers) {
  const DataCenterConfig config = small_config();
  GreedyStrategy greedy;
  Rig rig(config, &greedy, Mode::kControlled);
  for (int i = 0; i < 300; ++i) {
    rig.controller.step(Duration::seconds(i), 3.0, Duration::seconds(1));
  }
  const double dc_heat = rig.topology.dc_breaker().thermal_state();
  for (int i = 300; i < 1500; ++i) {
    const StepResult r = rig.controller.step(Duration::seconds(i), 0.4,
                                             Duration::seconds(1));
    ASSERT_LE(r.dc_load, config.dc_rated() + Power::watts(1.0));
  }
  // Breakers cool during recharge (load at/below rating).
  EXPECT_LT(rig.topology.dc_breaker().thermal_state(), dc_heat);
}

TEST(Controller, UncontrolledSprintTripsAndShutsDown) {
  const DataCenterConfig config = small_config();
  Rig rig(config, nullptr, Mode::kUncontrolled);
  bool tripped = false;
  int trip_second = -1;
  for (int i = 0; i < 600 && !tripped; ++i) {
    const StepResult r = rig.controller.step(Duration::seconds(i), 3.0,
                                             Duration::seconds(1));
    tripped = r.tripped;
    trip_second = i;
  }
  ASSERT_TRUE(tripped);
  EXPECT_GT(trip_second, 10);
  // Afterwards the data center is dark.
  const StepResult after = rig.controller.step(Duration::seconds(601), 0.5,
                                               Duration::seconds(1));
  EXPECT_EQ(after.phase, SprintPhase::kShutdown);
  EXPECT_DOUBLE_EQ(after.achieved, 0.0);
  EXPECT_TRUE(rig.controller.shutdown());
}

TEST(Controller, UncontrolledWithinRatingsNeverTrips) {
  const DataCenterConfig config = small_config();
  Rig rig(config, nullptr, Mode::kUncontrolled);
  for (int i = 0; i < 1800; ++i) {
    const StepResult r = rig.controller.step(Duration::seconds(i), 0.9,
                                             Duration::seconds(1));
    ASSERT_FALSE(r.tripped);
  }
}

TEST(Controller, NoSprintModeStaysAtNormalCores) {
  const DataCenterConfig config = small_config();
  Rig rig(config, nullptr, Mode::kNoSprint);
  const StepResult r = rig.run_for(3.0, 10);
  EXPECT_EQ(r.active_cores, 12u);
  EXPECT_DOUBLE_EQ(r.achieved, 1.0);
}

TEST(Controller, PowerCappedUsesRatingHeadroomOnly) {
  const DataCenterConfig config = small_config();
  Rig rig(config, nullptr, Mode::kPowerCapped);
  const StepResult r = rig.run_for(3.0, 10);
  EXPECT_GT(r.active_cores, 12u);
  EXPECT_GT(r.achieved, 1.0);
  // No stored energy involved, and every rating respected.
  EXPECT_DOUBLE_EQ(r.ups_power.w(), 0.0);
  EXPECT_LE(r.dc_load, config.dc_rated() + Power::watts(1.0));
}

TEST(Controller, PowerCappedBeatenByControlledSprint) {
  const DataCenterConfig config = small_config();
  Rig capped(config, nullptr, Mode::kPowerCapped);
  GreedyStrategy greedy;
  Rig sprint(config, &greedy, Mode::kControlled);
  const StepResult rc = capped.run_for(3.0, 60);
  const StepResult rs = sprint.run_for(3.0, 60);
  EXPECT_GT(rs.achieved, rc.achieved);
}

TEST(Controller, NoTesConfigStillSprints) {
  DataCenterConfig config = small_config();
  config.has_tes = false;
  GreedyStrategy greedy;
  Rig rig(config, &greedy, Mode::kControlled);
  const StepResult r = rig.run_for(2.5, 60);
  EXPECT_GT(r.degree, 1.0);
  // Without a TES, phase 3 can never be entered.
  for (int i = 60; i < 600; ++i) {
    const StepResult s = rig.controller.step(Duration::seconds(i), 2.5,
                                             Duration::seconds(1));
    ASSERT_NE(s.phase, SprintPhase::kTesCooling);
    ASSERT_DOUBLE_EQ(s.tes_heat.w(), 0.0);
  }
}

TEST(Controller, EnergyAccountingConsistent) {
  const DataCenterConfig config = small_config();
  GreedyStrategy greedy;
  Rig rig(config, &greedy, Mode::kControlled);
  const Energy ups_before = rig.topology.ups_available();
  for (int i = 0; i < 300; ++i) {
    rig.controller.step(Duration::seconds(i), 3.0, Duration::seconds(1));
  }
  // Controller-reported UPS energy equals the banks' depletion.
  EXPECT_NEAR(rig.controller.ups_energy().j(),
              (ups_before - rig.topology.ups_available()).j(), 1.0);
}

TEST(Controller, RemainingEnergyFractionDeclinesDuringSprint) {
  const DataCenterConfig config = small_config();
  GreedyStrategy greedy;
  Rig rig(config, &greedy, Mode::kControlled);
  const double start = rig.controller.remaining_energy_fraction();
  EXPECT_NEAR(start, 1.0, 0.01);
  for (int i = 0; i < 400; ++i) {
    rig.controller.step(Duration::seconds(i), 3.0, Duration::seconds(1));
  }
  EXPECT_LT(rig.controller.remaining_energy_fraction(), start - 0.05);
}

TEST(Controller, RequiresDependencies) {
  const DataCenterConfig config = small_config();
  compute::Fleet fleet(config.fleet);
  EXPECT_THROW((void)SprintingController(config, {}, nullptr, Mode::kNoSprint),
               std::invalid_argument);
  GreedyStrategy greedy;
  power::PowerTopology topo(config.topology_params());
  thermal::CoolingPlant cooling(config.cooling_params(nullptr));
  thermal::RoomModel room(config.room_params());
  // Controlled mode without a strategy is rejected.
  EXPECT_THROW((void)SprintingController(config, {&fleet, &topo, &cooling, nullptr, &room},
                                   nullptr, Mode::kControlled),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcs::core
