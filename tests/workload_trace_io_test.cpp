#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "workload/ms_trace.h"

namespace dcs::workload {
namespace {

TEST(TraceIo, ReadsSimpleCsv) {
  std::istringstream in("time_s,value\n0,0.5\n1,0.75\n2.5,3.0\n");
  const TimeSeries t = read_trace_csv(in);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0].value, 0.5);
  EXPECT_DOUBLE_EQ(t[2].time.sec(), 2.5);
  EXPECT_DOUBLE_EQ(t[2].value, 3.0);
}

TEST(TraceIo, HeaderOptional) {
  std::istringstream in("0,1\n1,2\n");
  EXPECT_EQ(read_trace_csv(in).size(), 2u);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::istringstream in("# a comment\n\ntime_s,value\n0,1\n# mid\n1,2\n");
  EXPECT_EQ(read_trace_csv(in).size(), 2u);
}

TEST(TraceIo, RejectsMalformedRows) {
  {
    std::istringstream in("0,1\nbroken row\n");
    EXPECT_THROW((void)read_trace_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("0,1\n1,2,3\n");
    EXPECT_THROW((void)read_trace_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("0,1\n1,abc\n");
    EXPECT_THROW((void)read_trace_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("0,1\n2x,1\n");
    EXPECT_THROW((void)read_trace_csv(in), std::invalid_argument);
  }
  {
    // A second header-looking line is an error, not a header.
    std::istringstream in("time,value\n0,1\ntime,value\n");
    EXPECT_THROW((void)read_trace_csv(in), std::invalid_argument);
  }
}

TEST(TraceIo, RejectsNonIncreasingTime) {
  std::istringstream in("0,1\n2,1\n1,1\n");
  EXPECT_THROW((void)read_trace_csv(in), std::invalid_argument);
}

TEST(TraceIo, RejectsEmptyInput) {
  std::istringstream in("# nothing here\n");
  EXPECT_THROW((void)read_trace_csv(in), std::invalid_argument);
}

TEST(TraceIo, WriteReadRoundTrip) {
  const TimeSeries original = generate_ms_trace();
  std::stringstream buffer;
  write_trace_csv(buffer, original);
  const TimeSeries loaded = read_trace_csv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); i += 97) {
    EXPECT_NEAR(loaded[i].value, original[i].value, 1e-9);
    EXPECT_NEAR(loaded[i].time.sec(), original[i].time.sec(), 1e-9);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "dcs_trace_io_test.csv";
  TimeSeries t;
  t.push_back(Duration::zero(), 0.25);
  t.push_back(Duration::minutes(1), 1.5);
  save_trace_csv(path, t);
  const TimeSeries loaded = load_trace_csv(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[1].value, 1.5);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)load_trace_csv("/nonexistent/dir/trace.csv"),
               std::invalid_argument);
  TimeSeries t;
  t.push_back(Duration::zero(), 1.0);
  EXPECT_THROW((void)save_trace_csv("/nonexistent/dir/trace.csv", t),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcs::workload
