#include "obs/profile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace dcs::obs {
namespace {

/// The Profiler is a process-wide singleton; every test starts from a clean,
/// disabled state and leaves it that way.
class ObsProfile : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::instance().reset();
    Profiler::instance().set_enabled(false);
    Profiler::set_thread_lane(0);
  }
  void TearDown() override {
    Profiler::instance().reset();
    Profiler::instance().set_enabled(false);
    Profiler::set_thread_lane(0);
  }
};

TEST_F(ObsProfile, DisabledScopesRecordNothing) {
  { DCS_OBS_SCOPE("noop"); }
  EXPECT_TRUE(Profiler::instance().collect().empty());
}

TEST_F(ObsProfile, EnabledScopesRecordSpans) {
  Profiler::instance().set_enabled(true);
  { DCS_OBS_SCOPE("outer"); { DCS_OBS_SCOPE("inner"); } }
  const std::vector<ProfileEvent> events = Profiler::instance().collect();
  ASSERT_EQ(events.size(), 2u);
  for (const ProfileEvent& e : events) {
    EXPECT_EQ(e.lane, 0u);
    EXPECT_GE(e.dur_us, 0.0);
  }
  // Same lane and (nearly) same start: the longer (outer) span sorts first
  // so Chrome renders proper nesting.
  EXPECT_GE(events[0].dur_us, events[1].dur_us);
}

TEST_F(ObsProfile, WorkerThreadsRecordIntoTheirOwnLanes) {
  Profiler::instance().set_enabled(true);
  std::vector<std::thread> workers;
  for (std::uint32_t lane = 1; lane <= 3; ++lane) {
    workers.emplace_back([lane] {
      Profiler::set_thread_lane(lane);
      DCS_OBS_SCOPE("work");
    });
  }
  for (std::thread& t : workers) t.join();
  const std::vector<ProfileEvent> events = Profiler::instance().collect();
  ASSERT_EQ(events.size(), 3u);
  // collect() sorts by lane first.
  EXPECT_EQ(events[0].lane, 1u);
  EXPECT_EQ(events[1].lane, 2u);
  EXPECT_EQ(events[2].lane, 3u);
}

TEST_F(ObsProfile, SummarizeAggregatesPerName) {
  Profiler::instance().record("a", 0.0, 10.0);
  Profiler::instance().record("a", 20.0, 30.0);
  Profiler::instance().record("b", 0.0, 5.0);
  // record() honours the enabled flag at the ScopeTimer, not here, so these
  // synthetic spans land even while disabled.
  const ProfileSummary summary =
      summarize(Profiler::instance().collect());
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary.at("a").count, 2u);
  EXPECT_DOUBLE_EQ(summary.at("a").total_us, 40.0);
  EXPECT_DOUBLE_EQ(summary.at("a").max_us, 30.0);
  EXPECT_DOUBLE_EQ(summary.at("a").mean_us(), 20.0);
  EXPECT_EQ(summary.at("b").count, 1u);
}

TEST_F(ObsProfile, ExportToEmitsWallSpansAndNamesLanes) {
  Profiler::instance().record("task", 1.0, 2.0);
  Profiler::set_thread_lane(0);
  Tracer tracer;
  export_to(tracer, Profiler::instance().collect());
  ASSERT_EQ(tracer.events().size(), 1u);
  const TraceEvent& e = tracer.events().front();
  EXPECT_EQ(e.domain, Domain::kWall);
  EXPECT_EQ(e.phase, 'X');
  EXPECT_DOUBLE_EQ(e.ts_us, 1.0);
  EXPECT_DOUBLE_EQ(e.dur_us, 2.0);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  EXPECT_NE(out.str().find("main"), std::string::npos);
}

TEST_F(ObsProfile, ResetDropsBufferedSpans) {
  Profiler::instance().record("x", 0.0, 1.0);
  EXPECT_EQ(Profiler::instance().collect().size(), 1u);
  Profiler::instance().reset();
  EXPECT_TRUE(Profiler::instance().collect().empty());
}

}  // namespace
}  // namespace dcs::obs
