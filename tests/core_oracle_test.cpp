#include "core/oracle.h"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

#include "core/prediction_strategy.h"
#include "workload/yahoo_trace.h"

namespace dcs::core {
namespace {

DataCenterConfig small_config() {
  DataCenterConfig c;
  c.fleet.pdu_count = 2;
  return c;
}

TEST(OracleSearch, BeatsOrMatchesEveryConstantBound) {
  DataCenter dc(small_config());
  workload::YahooTraceParams p;
  p.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  const OracleResult oracle = oracle_search(dc, trace, 4);
  for (const auto& [bound, perf] : oracle.sweep) {
    EXPECT_GE(oracle.best_performance, perf - 1e-12) << "bound " << bound;
  }
  EXPECT_GE(oracle.best_bound, 1.0);
  EXPECT_LE(oracle.best_bound, 4.0);
}

TEST(OracleSearch, SweepCoversCoreRange) {
  DataCenter dc(small_config());
  const TimeSeries trace = workload::generate_yahoo_trace();
  const OracleResult r = oracle_search(dc, trace, 6);
  // 12 -> 48 cores in strides of 6, final point forced: 12,18,...,48.
  EXPECT_EQ(r.sweep.size(), 7u);
  EXPECT_DOUBLE_EQ(r.sweep.front().first, 1.0);
  EXPECT_DOUBLE_EQ(r.sweep.back().first, 4.0);
}

TEST(OracleSearch, LongBurstPrefersConstrainedBound) {
  // Fig. 10b: for long bursts the optimal bound is an interior point.
  DataCenter dc(small_config());
  workload::YahooTraceParams p;
  p.burst_degree = 3.2;
  p.burst_duration = Duration::minutes(15);
  const OracleResult r = oracle_search(dc, workload::generate_yahoo_trace(p), 2);
  EXPECT_LT(r.best_bound, 3.5);
  EXPECT_GT(r.best_bound, 1.5);
}

TEST(OracleSearch, ShortBurstAllowsGreedyBound) {
  // Fig. 10a: for short bursts an unconstrained bound is optimal (or tied).
  DataCenter dc(small_config());
  workload::YahooTraceParams p;
  p.burst_degree = 3.2;
  p.burst_duration = Duration::minutes(5);
  const OracleResult r = oracle_search(dc, workload::generate_yahoo_trace(p), 2);
  GreedyStrategy greedy;
  const RunResult greedy_run = dc.run(workload::generate_yahoo_trace(p), &greedy);
  EXPECT_NEAR(r.best_performance, greedy_run.performance_factor, 0.01);
}

TEST(OracleSearch, StrideValidation) {
  DataCenter dc(small_config());
  EXPECT_THROW((void)oracle_search(dc, workload::generate_yahoo_trace(), 0),
               std::invalid_argument);
}

TEST(UpperBoundTableBuilder, ProducesUsableTable) {
  DataCenter dc(small_config());
  const std::array<Duration, 3> durations = {
      Duration::minutes(1), Duration::minutes(8), Duration::minutes(15)};
  const std::array<double, 2> degrees = {2.0, 3.2};
  const UpperBoundTable table = build_upper_bound_table(
      dc, durations, degrees, workload::YahooTraceParams{}, 6);
  EXPECT_EQ(table.durations().size(), 3u);
  EXPECT_EQ(table.degrees().size(), 2u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      const double b = table.bound_at(i, j);
      EXPECT_GE(b, 1.0);
      EXPECT_LE(b, 4.0);
    }
  }
  // Short bursts get at least as generous a bound as long ones.
  EXPECT_GE(table.bound_at(0, 1), table.bound_at(2, 1) - 1e-9);
}

TEST(UpperBoundTableBuilder, TableFeedsPredictionStrategy) {
  DataCenter dc(small_config());
  const std::array<Duration, 2> durations = {Duration::minutes(1),
                                             Duration::minutes(15)};
  const std::array<double, 2> degrees = {2.0, 3.2};
  const UpperBoundTable table = build_upper_bound_table(
      dc, durations, degrees, workload::YahooTraceParams{}, 9);
  workload::YahooTraceParams p;
  p.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  PredictionStrategy strategy(Duration::minutes(15), &table);
  const RunResult r = dc.run(trace, &strategy);
  GreedyStrategy greedy;
  const RunResult g = dc.run(trace, &greedy);
  EXPECT_GT(r.performance_factor, g.performance_factor);
}

TEST(UpperBoundTableBuilder, Validation) {
  DataCenter dc(small_config());
  const std::array<Duration, 1> one_duration = {Duration::minutes(1)};
  const std::array<double, 2> degrees = {2.0, 3.0};
  EXPECT_THROW((void)build_upper_bound_table(dc, one_duration, degrees,
                                       workload::YahooTraceParams{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcs::core
