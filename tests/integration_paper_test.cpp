// End-to-end checks that the reproduction lands in the paper's reported
// bands and reproduces the qualitative claims of Section VII. Also hosts
// the parameterized safety-property sweeps (TEST_P) over burst shapes and
// infrastructure headroom.
#include <gtest/gtest.h>

#include <tuple>

#include "core/datacenter.h"
#include "core/heuristic_strategy.h"
#include "core/oracle.h"
#include "core/prediction_strategy.h"
#include "workload/ms_trace.h"
#include "workload/predictor.h"
#include "workload/yahoo_trace.h"

namespace dcs::core {
namespace {

DataCenterConfig small_config() {
  DataCenterConfig c;
  c.fleet.pdu_count = 2;  // results are invariant to the PDU count
  return c;
}

// ---------------------------------------------------------------------------
// Section VII-A (Fig. 8): uncontrolled vs controlled sprinting.
// ---------------------------------------------------------------------------

TEST(PaperFig8, UncontrolledTripsMinutesIntoTheTrace) {
  // The paper's uncontrolled run trips 5 min 20 s into the MS trace. Our
  // synthetic trace trips in the same few-minutes band once its tall burst
  // arrives.
  DataCenter dc(small_config());
  const RunResult r = dc.run(workload::generate_ms_trace(), nullptr,
                             {.mode = Mode::kUncontrolled});
  ASSERT_TRUE(r.tripped);
  EXPECT_GT(r.trip_time.min(), 2.0);
  EXPECT_LT(r.trip_time.min(), 9.0);
}

TEST(PaperFig8, ControlledSprintingOutlastsUncontrolled) {
  DataCenter dc(small_config());
  GreedyStrategy greedy;
  const RunResult controlled = dc.run(workload::generate_ms_trace(), &greedy);
  const RunResult uncontrolled = dc.run(workload::generate_ms_trace(), nullptr,
                                        {.mode = Mode::kUncontrolled});
  EXPECT_FALSE(controlled.tripped);
  EXPECT_GT(controlled.sprint_time, uncontrolled.sprint_time);
  EXPECT_GT(controlled.performance_factor,
            3.0 * uncontrolled.performance_factor);
}

TEST(PaperFig8, UpsCarriesMajorityOfPduLevelAdditionalEnergy) {
  // Section VII-A: "the UPS and TES provide 54% and 13% of the additional
  // energy on average at the PDU level and DC level". Check the ordering
  // and rough magnitudes: the UPS is the dominant contributor at the PDU
  // tier, the TES a smaller one at the DC tier.
  DataCenter dc(small_config());
  GreedyStrategy greedy;
  const RunResult r = dc.run(workload::generate_ms_trace(), &greedy);
  const Energy pdu_additional = r.ups_energy + r.pdu_overload_energy;
  ASSERT_GT(pdu_additional.j(), 0.0);
  const double ups_share = r.ups_energy / pdu_additional;
  EXPECT_GT(ups_share, 0.30);
  EXPECT_LT(ups_share, 0.85);
  EXPECT_GT(r.tes_saved_energy.j(), 0.0);
  EXPECT_LT(r.tes_saved_energy.j(), r.ups_energy.j());
}

// ---------------------------------------------------------------------------
// Section VII-B (Fig. 9): strategies on the MS trace.
// ---------------------------------------------------------------------------

class MsStrategies : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dc_ = new DataCenter(small_config());
    trace_ = new TimeSeries(workload::generate_ms_trace());
    const std::vector<Duration> durations = {
        Duration::minutes(1), Duration::minutes(5), Duration::minutes(10),
        Duration::minutes(15), Duration::minutes(25)};
    const std::vector<double> degrees = {1.5, 2.0, 2.6, 3.0, 3.6};
    table_ = new UpperBoundTable(build_upper_bound_table(
        *dc_, durations, degrees, workload::YahooTraceParams{}, 4));
    oracle_ = new OracleResult(oracle_search(*dc_, *trace_, 2));
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete table_;
    delete trace_;
    delete dc_;
  }

  static DataCenter* dc_;
  static TimeSeries* trace_;
  static UpperBoundTable* table_;
  static OracleResult* oracle_;
};

DataCenter* MsStrategies::dc_ = nullptr;
TimeSeries* MsStrategies::trace_ = nullptr;
UpperBoundTable* MsStrategies::table_ = nullptr;
OracleResult* MsStrategies::oracle_ = nullptr;

TEST_F(MsStrategies, OverallBandMatchesPaper) {
  // Paper: "Data Center Sprinting can improve the average performance by a
  // factor of 1.62 to 1.76 with the MS trace."
  GreedyStrategy greedy;
  const double g = dc_->run(*trace_, &greedy).performance_factor;
  EXPECT_GT(g, 1.5);
  EXPECT_LT(g, 1.8);
  EXPECT_GT(oracle_->best_performance, g);
  EXPECT_LT(oracle_->best_performance, 1.9);
}

TEST_F(MsStrategies, PredictionAtZeroErrorNearOracle) {
  const workload::BurstTruth truth = workload::measure_burst_truth(*trace_);
  PredictionStrategy p(truth.duration, table_);
  const double perf = dc_->run(*trace_, &p).performance_factor;
  GreedyStrategy greedy;
  const double g = dc_->run(*trace_, &greedy).performance_factor;
  EXPECT_GT(perf, g);
  EXPECT_LE(perf, oracle_->best_performance + 0.02);
}

TEST_F(MsStrategies, HeuristicAtZeroErrorNearOracle) {
  ConstantBoundStrategy ob(oracle_->best_bound, "oracle");
  const RunResult orun = dc_->run(*trace_, &ob);
  HeuristicStrategy h(orun.avg_sprint_degree, dc_->budget_degree_seconds());
  const double perf = dc_->run(*trace_, &h).performance_factor;
  GreedyStrategy greedy;
  const double g = dc_->run(*trace_, &greedy).performance_factor;
  EXPECT_GT(perf, g);
  EXPECT_LE(perf, oracle_->best_performance + 0.02);
}

TEST_F(MsStrategies, PredictionRobustToOverestimatedDuration) {
  // Fig. 9: overestimating the burst duration keeps Prediction well above
  // Greedy (the bound starts low and adapts).
  const workload::BurstTruth truth = workload::measure_burst_truth(*trace_);
  GreedyStrategy greedy;
  const double g = dc_->run(*trace_, &greedy).performance_factor;
  for (double err : {0.2, 0.6, 1.0}) {
    const workload::ErrorfulForecast f(truth, err);
    PredictionStrategy p(f.predicted_duration(), table_);
    EXPECT_GT(dc_->run(*trace_, &p).performance_factor, g) << "err " << err;
  }
}

TEST_F(MsStrategies, PredictionDegradesToGreedyWhenDurationUnderestimated) {
  // Fig. 9: at -100 % error the predicted duration is 0, the table returns
  // its most generous bound, and Prediction behaves like Greedy.
  const workload::BurstTruth truth = workload::measure_burst_truth(*trace_);
  const workload::ErrorfulForecast f(truth, -1.0);
  PredictionStrategy p(f.predicted_duration(), table_);
  GreedyStrategy greedy;
  const double g = dc_->run(*trace_, &greedy).performance_factor;
  EXPECT_NEAR(dc_->run(*trace_, &p).performance_factor, g, 0.05);
}

TEST_F(MsStrategies, HeuristicDegradesToGreedyWhenDegreeOverestimated) {
  // Fig. 9: overestimating SDe_p makes the initial bound too high — "the
  // overall result can be still unsatisfactory (sometimes no better than
  // Greedy)".
  ConstantBoundStrategy ob(oracle_->best_bound, "oracle");
  const RunResult orun = dc_->run(*trace_, &ob);
  GreedyStrategy greedy;
  const double g = dc_->run(*trace_, &greedy).performance_factor;
  HeuristicStrategy h(orun.avg_sprint_degree * 1.6,
                      dc_->budget_degree_seconds());
  const double perf = dc_->run(*trace_, &h).performance_factor;
  EXPECT_NEAR(perf, g, 0.08);
}

// ---------------------------------------------------------------------------
// Section VII-C (Fig. 10): burst degree and duration sweeps (Yahoo trace).
// ---------------------------------------------------------------------------

TEST(PaperFig10, ShortBurstsGreedyMatchesOracle) {
  // Fig. 10a: "the Greedy strategy can achieve the same performance as the
  // Oracle strategy" for 5-minute bursts.
  DataCenter dc(small_config());
  for (double degree : {2.6, 3.0, 3.6}) {
    workload::YahooTraceParams p;
    p.burst_degree = degree;
    p.burst_duration = Duration::minutes(5);
    const TimeSeries trace = workload::generate_yahoo_trace(p);
    GreedyStrategy greedy;
    const double g = dc.run(trace, &greedy).performance_factor;
    const OracleResult o = oracle_search(dc, trace, 4);
    EXPECT_NEAR(g, o.best_performance, 0.01) << "degree " << degree;
  }
}

TEST(PaperFig10, LongBurstsGreedySignificantlyDegraded) {
  // Fig. 10b: for 15-minute bursts Greedy falls well behind the Oracle, and
  // the gap grows with the burst degree.
  DataCenter dc(small_config());
  double prev_gap = 0.0;
  for (double degree : {2.6, 3.2, 3.6}) {
    workload::YahooTraceParams p;
    p.burst_degree = degree;
    p.burst_duration = Duration::minutes(15);
    const TimeSeries trace = workload::generate_yahoo_trace(p);
    GreedyStrategy greedy;
    const double g = dc.run(trace, &greedy).performance_factor;
    const OracleResult o = oracle_search(dc, trace, 4);
    const double gap = o.best_performance - g;
    EXPECT_GT(gap, 0.08) << "degree " << degree;
    EXPECT_GE(gap, prev_gap - 0.02) << "degree " << degree;
    prev_gap = gap;
  }
}

TEST(PaperFig10, PredictionBeatsHeuristicOnLongBursts) {
  // Fig. 10b: "The Prediction strategy also performs better than the
  // Heuristic strategy" (with zero estimation error).
  DataCenterConfig config = small_config();
  DataCenter dc(config);
  const std::vector<Duration> durations = {Duration::minutes(1),
                                           Duration::minutes(8),
                                           Duration::minutes(15),
                                           Duration::minutes(25)};
  const std::vector<double> degrees = {2.0, 2.6, 3.2, 3.6};
  const UpperBoundTable table = build_upper_bound_table(
      dc, durations, degrees, workload::YahooTraceParams{}, 4);

  workload::YahooTraceParams p;
  p.burst_degree = 3.2;
  p.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  const workload::BurstTruth truth = workload::measure_burst_truth(trace);

  const OracleResult o = oracle_search(dc, trace, 2);
  ConstantBoundStrategy ob(o.best_bound, "oracle");
  const RunResult orun = dc.run(trace, &ob);

  PredictionStrategy pred(truth.duration, &table);
  HeuristicStrategy heur(orun.avg_sprint_degree, dc.budget_degree_seconds());
  GreedyStrategy greedy;

  const double gp = dc.run(trace, &pred).performance_factor;
  const double gh = dc.run(trace, &heur).performance_factor;
  const double gg = dc.run(trace, &greedy).performance_factor;
  EXPECT_GT(gp, gh - 1e-6);
  EXPECT_GT(gh, gg);
  EXPECT_LE(gp, o.best_performance + 0.02);
}

TEST(PaperFig10, YahooOverallBand) {
  // Paper: "1.75 to 2.45 with the Yahoo trace". Our synthetic baseline
  // lands the same ordering with a band of roughly 1.6-2.1 (see
  // EXPERIMENTS.md for the calibration notes).
  DataCenter dc(small_config());
  double lo = 1e9, hi = 0.0;
  for (double degree : {2.6, 3.6}) {
    for (double minutes : {5.0, 15.0}) {
      workload::YahooTraceParams p;
      p.burst_degree = degree;
      p.burst_duration = Duration::minutes(minutes);
      const OracleResult o =
          oracle_search(dc, workload::generate_yahoo_trace(p), 4);
      lo = std::min(lo, o.best_performance);
      hi = std::max(hi, o.best_performance);
    }
  }
  EXPECT_GT(lo, 1.5);
  EXPECT_GT(hi, 1.9);
  EXPECT_LT(hi, 2.6);
}

// ---------------------------------------------------------------------------
// Parameterized safety properties: across burst shapes and headroom the
// controlled sprint never trips a breaker, never overheats the room, and
// never performs worse than not sprinting.
// ---------------------------------------------------------------------------

using SafetyParams = std::tuple<double /*degree*/, double /*minutes*/,
                                double /*headroom*/>;

class ControlledSafety : public ::testing::TestWithParam<SafetyParams> {};

TEST_P(ControlledSafety, NeverTripsNeverOverheatsNeverLoses) {
  const auto [degree, minutes, headroom] = GetParam();
  DataCenterConfig config = small_config();
  config.dc_headroom = headroom;
  DataCenter dc(config);
  workload::YahooTraceParams p;
  p.burst_degree = degree;
  p.burst_duration = Duration::minutes(minutes);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy, {.record = true});

  EXPECT_FALSE(r.tripped);
  EXPECT_GE(r.performance_factor, 1.0 - 1e-9);
  EXPECT_LE(r.peak_room_temperature.c(), 35.0 + 1e-9);
  EXPECT_GE(r.min_ups_soc, -1e-9);
  EXPECT_GE(r.min_tes_soc, -1e-9);
  // Breaker thermal state stays strictly below the trip point.
  EXPECT_LT(r.recorder.series("dc_cb_heat").max_value(), 1.0);
  EXPECT_LT(r.recorder.series("pdu_cb_heat").max_value(), 1.0);
  // Achieved is capped by demand everywhere.
  const TimeSeries& demand = r.recorder.series("demand");
  const TimeSeries& achieved = r.recorder.series("achieved");
  for (std::size_t i = 0; i < demand.size(); ++i) {
    ASSERT_LE(achieved[i].value, demand[i].value + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BurstAndHeadroomSweep, ControlledSafety,
    ::testing::Combine(::testing::Values(1.5, 2.6, 3.2, 4.0),
                       ::testing::Values(1.0, 5.0, 15.0),
                       ::testing::Values(0.0, 0.10, 0.20)),
    [](const ::testing::TestParamInfo<SafetyParams>& info) {
      return "deg" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 10)) +
             "_min" + std::to_string(static_cast<int>(std::get<1>(info.param))) +
             "_hr" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

// More headroom can only help (monotonicity ablation).
class HeadroomMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(HeadroomMonotonic, PerformanceNonDecreasingInHeadroom) {
  const double degree = GetParam();
  workload::YahooTraceParams p;
  p.burst_degree = degree;
  p.burst_duration = Duration::minutes(10);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  double prev = 0.0;
  for (double headroom : {0.0, 0.05, 0.10, 0.15, 0.20}) {
    DataCenterConfig config = small_config();
    config.dc_headroom = headroom;
    DataCenter dc(config);
    GreedyStrategy greedy;
    const double perf = dc.run(trace, &greedy).performance_factor;
    EXPECT_GE(perf, prev - 0.02) << "headroom " << headroom;
    prev = perf;
  }
}

INSTANTIATE_TEST_SUITE_P(DegreeSweep, HeadroomMonotonic,
                         ::testing::Values(2.0, 2.8, 3.6));

// PUE sensitivity: the DC rating is provisioned on the *total* (IT +
// cooling) power, so PUE changes co-scale the rating and the cooling load
// and the sprinting capability is only mildly affected — but every run
// must remain safe and profitable.
TEST(PaperAblation, PueSweepStaysSafeAndEffective) {
  workload::YahooTraceParams p;
  p.burst_degree = 3.2;
  p.burst_duration = Duration::minutes(10);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  for (double pue : {1.2, 1.53, 1.8, 2.0}) {
    DataCenterConfig config = small_config();
    config.pue = pue;
    DataCenter dc(config);
    GreedyStrategy greedy;
    const RunResult r = dc.run(trace, &greedy);
    EXPECT_FALSE(r.tripped) << "PUE " << pue;
    EXPECT_GT(r.performance_factor, 1.4) << "PUE " << pue;
  }
}

// TES sizing: a bigger tank never hurts and a much bigger one helps on
// thermally-bound workloads.
TEST(PaperAblation, MoreTesNeverHurts) {
  workload::YahooTraceParams p;
  p.burst_degree = 3.2;
  p.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  double prev = 0.0;
  for (double minutes : {6.0, 12.0, 24.0}) {
    DataCenterConfig config = small_config();
    config.tes_capacity_minutes = minutes;
    DataCenter dc(config);
    GreedyStrategy greedy;
    const double perf = dc.run(trace, &greedy).performance_factor;
    EXPECT_GE(perf, prev - 0.02) << "TES minutes " << minutes;
    prev = perf;
  }
}

TEST(PaperAblation, BiggerBatteryNeverHurts) {
  workload::YahooTraceParams p;
  p.burst_degree = 3.2;
  p.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  double prev = 0.0;
  for (double ah : {0.25, 0.5, 1.0}) {
    DataCenterConfig config = small_config();
    config.battery_per_server.capacity = Charge::amp_hours(ah);
    DataCenter dc(config);
    GreedyStrategy greedy;
    const double perf = dc.run(trace, &greedy).performance_factor;
    EXPECT_GE(perf, prev - 0.02) << "capacity " << ah;
    prev = perf;
  }
}

}  // namespace
}  // namespace dcs::core
