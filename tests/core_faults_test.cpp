// DataCenter-level fault injection: the degradation ladder, the invariant
// watchdog, and the zero-cost guarantee (a run without active faults is
// bit-identical to a run without an injector at all).
#include <gtest/gtest.h>

#include "core/datacenter.h"
#include "faults/fault.h"
#include "faults/schedule.h"
#include "power/generator.h"
#include "workload/yahoo_trace.h"

namespace dcs::core {
namespace {

using faults::Fault;
using faults::FaultKind;
using faults::FaultSchedule;
using faults::SensorChannel;

DataCenterConfig small_config() {
  DataCenterConfig c;
  c.fleet.pdu_count = 2;
  return c;
}

TimeSeries burst_trace() {
  workload::YahooTraceParams p;
  p.burst_degree = 3.2;
  p.burst_duration = Duration::minutes(15);
  return workload::generate_yahoo_trace(p);
}

Fault window_min(FaultKind kind, double start_min, double end_min,
                 double magnitude,
                 SensorChannel channel = SensorChannel::kDemand) {
  return Fault{kind, Duration::minutes(start_min), Duration::minutes(end_min),
               magnitude, channel};
}

// ---------------------------------------------------------------------------
// Zero-cost guarantee
// ---------------------------------------------------------------------------

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.avg_achieved, b.avg_achieved);
  EXPECT_EQ(a.performance_factor, b.performance_factor);
  EXPECT_EQ(a.avg_sprint_degree, b.avg_sprint_degree);
  EXPECT_EQ(a.drop_fraction, b.drop_fraction);
  EXPECT_EQ(a.sprint_time.sec(), b.sprint_time.sec());
  EXPECT_EQ(a.ups_energy.j(), b.ups_energy.j());
  EXPECT_EQ(a.tes_saved_energy.j(), b.tes_saved_energy.j());
  EXPECT_EQ(a.pdu_overload_energy.j(), b.pdu_overload_energy.j());
  EXPECT_EQ(a.dc_overload_energy.j(), b.dc_overload_energy.j());
  EXPECT_EQ(a.min_ups_soc, b.min_ups_soc);
  EXPECT_EQ(a.min_tes_soc, b.min_tes_soc);
  EXPECT_EQ(a.peak_room_temperature.c(), b.peak_room_temperature.c());
  EXPECT_EQ(a.tripped, b.tripped);
  for (std::size_t i = 0; i < a.phase_time.size(); ++i) {
    EXPECT_EQ(a.phase_time[i].sec(), b.phase_time[i].sec());
  }
  for (const char* channel : {"degree", "achieved", "room_c", "dc_cb_heat",
                              "ups_soc", "tes_soc"}) {
    const TimeSeries& sa = a.recorder.series(channel);
    const TimeSeries& sb = b.recorder.series(channel);
    ASSERT_EQ(sa.size(), sb.size()) << channel;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_EQ(sa[i].value, sb[i].value) << channel << " @ " << i;
    }
  }
}

TEST(FaultFreeFastPath, InjectorWithInactiveScheduleIsBitIdentical) {
  DataCenter dc(small_config());
  const TimeSeries trace = burst_trace();
  GreedyStrategy greedy;
  const RunResult plain = dc.run(trace, &greedy, {.record = true});

  // Every fault window sits after the trace ends: the injector is attached
  // and runs every tick, yet must perturb nothing.
  FaultSchedule late;
  const double end_min = trace.end_time().min();
  late.add(window_min(FaultKind::kUpsBankOutage, end_min + 1, end_min + 5, 0.9));
  late.add(window_min(FaultKind::kChillerFailure, end_min + 1, end_min + 5, 1.0));
  late.add(window_min(FaultKind::kSensorDropped, end_min + 1, end_min + 5, 1.0));
  GreedyStrategy greedy2;
  const RunResult with = dc.run(trace, &greedy2,
                                {.record = true, .faults = &late});
  expect_identical(plain, with);
  EXPECT_EQ(with.max_degradation, DegradationLevel::kNominal);
  EXPECT_EQ(with.degradation_time[0].sec(), trace.end_time().sec());
  EXPECT_TRUE(with.watchdog.ok());
  // The injector-only channels exist but report no activity.
  const TimeSeries& fa = with.recorder.series("faults_active");
  for (const Sample& s : fa.samples()) ASSERT_EQ(s.value, 0.0);
}

TEST(FaultFreeFastPath, EmptyScheduleSkipsTheInjector) {
  DataCenter dc(small_config());
  const TimeSeries trace = burst_trace();
  const FaultSchedule empty;
  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy, {.faults = &empty});
  EXPECT_TRUE(r.recorder.channels().empty());
  EXPECT_EQ(r.max_degradation, DegradationLevel::kNominal);
  EXPECT_TRUE(r.watchdog.ok());
  EXPECT_GT(r.watchdog.checks, 0u);
}

// ---------------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------------

TEST(DegradationLadder, MildUpsOutageShedsWithoutTripping) {
  DataCenter dc(small_config());
  const TimeSeries trace = burst_trace();
  FaultSchedule s;
  s.add(window_min(FaultKind::kUpsBankOutage, 7, 13, 0.4));
  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy, {.record = true, .faults = &s});
  EXPECT_FALSE(r.tripped);
  EXPECT_TRUE(r.watchdog.ok()) << r.watchdog.first_message;
  EXPECT_GE(r.max_degradation, DegradationLevel::kDerated);
  EXPECT_LT(r.max_degradation, DegradationLevel::kPowerCapFallback);
  // Time was spent on the ladder exactly while the fault was active.
  Duration on_ladder = Duration::zero();
  for (std::size_t i = 1; i < r.degradation_time.size(); ++i) {
    on_ladder += r.degradation_time[i];
  }
  EXPECT_GE(on_ladder.min(), 5.9);
  // Ladder time + nominal time covers the whole run.
  EXPECT_NEAR((on_ladder + r.degradation_time[0]).sec(),
              trace.end_time().sec(), 1e-6);
}

TEST(DegradationLadder, SevereFaultEndsTheSprint) {
  DataCenter dc(small_config());
  const TimeSeries trace = burst_trace();
  FaultSchedule s;
  // Chiller failure at magnitude 0.6: severity 0.6 >= 0.5 ends the sprint.
  s.add(window_min(FaultKind::kChillerFailure, 8, 12, 0.6));
  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy, {.record = true, .faults = &s});
  EXPECT_FALSE(r.tripped);
  EXPECT_GE(r.max_degradation, DegradationLevel::kSprintEnded);
  const TimeSeries& degree = r.recorder.series("degree");
  // Sprinting before the fault; back to normal cores during it.
  EXPECT_GT(degree.at(Duration::minutes(7)), 1.5);
  EXPECT_DOUBLE_EQ(degree.at(Duration::minutes(9)), 1.0);
  EXPECT_DOUBLE_EQ(degree.at(Duration::minutes(11.9)), 1.0);
}

TEST(DegradationLadder, NuisanceBiasNeverTripsTheGovernor) {
  DataCenter dc(small_config());
  const TimeSeries trace = burst_trace();
  FaultSchedule s;
  // A marginal breaker element arrives mid-overload: the governor re-plans
  // against the biased threshold instead of tripping.
  s.add(window_min(FaultKind::kBreakerNuisanceBias, 7, 12, 0.3));
  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy, {.faults = &s});
  EXPECT_FALSE(r.tripped);
  EXPECT_TRUE(r.watchdog.ok()) << r.watchdog.first_message;
}

TEST(DegradationLadder, CriticalChillerLossWithoutTesFallsBackToPowerCap) {
  DataCenterConfig config = small_config();
  config.has_tes = false;
  DataCenter dc(config);
  const TimeSeries trace = burst_trace();
  FaultSchedule s;
  // 60 % of the chiller gone and no TES: every extra watt shortens the time
  // to the room threshold, so the ladder's last rung engages.
  s.add(window_min(FaultKind::kChillerFailure, 6, 18, 0.6));
  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy, {.record = true, .faults = &s});
  EXPECT_FALSE(r.tripped);
  EXPECT_EQ(r.max_degradation, DegradationLevel::kPowerCapFallback);
  EXPECT_GT(r.degradation_time[4].min(), 5.0);
  EXPECT_TRUE(r.watchdog.ok()) << r.watchdog.first_message;
  // In the fallback the fleet parks at normal cores.
  const TimeSeries& degree = r.recorder.series("degree");
  EXPECT_DOUBLE_EQ(degree.at(Duration::minutes(10)), 1.0);
}

TEST(DegradationLadder, WatchdogReportsUnavoidableOverheat) {
  // Just under half the chiller lost, no TES, demand at capacity: even
  // normal-core operation overheats the room eventually. Nothing the
  // controller can shed avoids it — the watchdog must say so instead of the
  // run aborting or reporting silently wrong numbers.
  DataCenterConfig config = small_config();
  config.has_tes = false;
  DataCenter dc(config);
  TimeSeries trace;
  trace.push_back(Duration::zero(), 1.0);
  trace.push_back(Duration::minutes(35), 1.0);
  FaultSchedule s;
  s.add(window_min(FaultKind::kChillerFailure, 5, 35, 0.49));
  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy, {.faults = &s});
  EXPECT_FALSE(r.tripped);
  EXPECT_FALSE(r.watchdog.ok());
  EXPECT_NE(r.watchdog.first_message.find("room"), std::string::npos);
  EXPECT_GT(r.peak_room_temperature.c(), 35.0);  // setpoint 25 + threshold 10
}

TEST(DegradationLadder, StaleDemandSensorBlindsTheControllerSafely) {
  DataCenter dc(small_config());
  const TimeSeries trace = burst_trace();
  FaultSchedule s;
  // The demand sensor freezes before the burst arrives: the controller keeps
  // reading the quiet baseline and must simply not sprint — blindness can
  // cost performance but never safety.
  s.add(window_min(FaultKind::kSensorStale, 4, 12, 1.0,
                   SensorChannel::kDemand));
  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy, {.record = true, .faults = &s});
  EXPECT_FALSE(r.tripped);
  EXPECT_TRUE(r.watchdog.ok()) << r.watchdog.first_message;
  // measured_demand latched the pre-burst baseline while true demand burst.
  const TimeSeries& md = r.recorder.series("measured_demand");
  const TimeSeries& d = r.recorder.series("demand");
  const Duration probe = Duration::minutes(9);
  EXPECT_GT(d.at(probe), 3.0);
  EXPECT_LT(md.at(probe), 1.0);
  // Blind to the burst, the controller holds normal cores.
  EXPECT_DOUBLE_EQ(r.recorder.series("degree").at(probe), 1.0);
}

TEST(DegradationLadder, GeneratorStartFailureStillBridgedByUps) {
  DataCenterConfig config = small_config();
  DataCenter dc(config);
  const TimeSeries trace = burst_trace();
  TimeSeries supply;
  supply.push_back(Duration::zero(), 1.0);
  supply.push_back(Duration::minutes(7), 0.85);
  supply.push_back(Duration::minutes(12), 1.0);
  supply.push_back(trace.end_time(), 1.0);
  power::DieselGenerator generator(
      "gen", {.rated = config.dc_rated() * 0.5,
              .start_delay = Duration::seconds(45)});
  FaultSchedule s;
  s.add(window_min(FaultKind::kGeneratorStartFailure, 0, 30, 1.0));
  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy,
                             {.record = true,
                              .supply_fraction = &supply,
                              .generator = &generator,
                              .faults = &s});
  EXPECT_FALSE(r.tripped);
  EXPECT_FALSE(generator.running());  // the start never completed
  EXPECT_LT(r.min_ups_soc, 1.0);      // the UPS carried the shortfall
  EXPECT_TRUE(r.watchdog.ok()) << r.watchdog.first_message;
  // The dip ends the sprint; the baseline load rides through on the UPS.
  EXPECT_DOUBLE_EQ(r.recorder.series("degree").at(Duration::minutes(9)), 1.0);
}

}  // namespace
}  // namespace dcs::core
