// Streaming trace sinks: bounded memory, crash-safe Chrome output, and the
// Tracer's streaming mode.
#include "obs/sink.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace.h"
#include "util/json.h"

namespace dcs::obs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TraceEvent instant_at(double ts_us, const std::string& name) {
  TraceEvent e;
  e.phase = 'i';
  e.ts_us = ts_us;
  e.cat = "test";
  e.name = name;
  return e;
}

TEST(ObsSink, StreamsManyEventsThroughSmallBufferWithBoundedMemory) {
  const std::string path = temp_path("sink_bounded.json");
  const std::size_t kEvents = 120000;
  const std::size_t kBuffer = 256;
  {
    ChromeStreamSink sink(path, {.buffer_events = kBuffer});
    ASSERT_TRUE(sink.ok());
    for (std::size_t i = 0; i < kEvents; ++i) {
      sink.write(instant_at(static_cast<double>(i), "e"));
    }
    sink.finalize();
    EXPECT_EQ(sink.events_written(), kEvents);
    // The whole point: peak memory is the buffer cap, not the trace length.
    EXPECT_LE(sink.peak_buffered(), kBuffer);
    EXPECT_GE(sink.flush_count(), kEvents / kBuffer);
  }
  const json::Value doc = json::parse_file(path);
  // +2 process-metadata events for the sim domain... actually only events
  // written through write() count; metadata is emitted inline.
  EXPECT_GE(doc.at("traceEvents").size(), kEvents);
  std::remove(path.c_str());
}

TEST(ObsSink, ChromeFileIsValidJsonMidStream) {
  const std::string path = temp_path("sink_midstream.json");
  ChromeStreamSink sink(path, {.buffer_events = 64});
  for (std::size_t i = 0; i < 200; ++i) {
    sink.write(instant_at(static_cast<double>(i), "mid"));
  }
  // No finalize: the crash-safe trailer written after each flush must leave
  // a complete, loadable document on disk (only the tail of the last
  // unflushed buffer is missing).
  const json::Value doc = json::parse_file(path);
  EXPECT_GE(doc.at("traceEvents").size(), 128u);
  sink.finalize();
  EXPECT_EQ(json::parse_file(path).at("traceEvents").size(),
            200u + 1u);  // + sim process metadata
  std::remove(path.c_str());
}

TEST(ObsSink, FinalizeIsIdempotentAndDtorFinalizes) {
  const std::string path = temp_path("sink_idempotent.json");
  {
    ChromeStreamSink sink(path);
    sink.write(instant_at(1.0, "once"));
    sink.finalize();
    sink.finalize();
  }  // dtor calls finalize() again
  const json::Value doc = json::parse_file(path);
  EXPECT_GE(doc.at("traceEvents").size(), 1u);
  std::remove(path.c_str());
}

TEST(ObsSink, LaneNamesRenderOnceAndInterleaveSafely) {
  const std::string path = temp_path("sink_lanes.json");
  {
    ChromeStreamSink sink(path, {.buffer_events = 4});
    sink.write_lane_name(Domain::kSim, 2, "task-2");
    sink.write(instant_at(1.0, "a"));
    sink.write_lane_name(Domain::kSim, 2, "task-2");  // duplicate: dropped
    sink.write(instant_at(2.0, "b"));
    sink.finalize();
  }
  const std::string text = read_file(path);
  const json::Value doc = json::parse(text);
  std::size_t named = 0;
  for (std::size_t i = 0; i < doc.at("traceEvents").size(); ++i) {
    const json::Value& e = doc.at("traceEvents")[i];
    if (e.at("ph").as_string() == "M" &&
        e.at("name").as_string() == "thread_name" &&
        e.at("args").at("name").as_string() == "task-2") {
      ++named;
    }
  }
  EXPECT_EQ(named, 1u);
  std::remove(path.c_str());
}

TEST(ObsSink, JsonlSinkWritesOneParsableObjectPerLine) {
  const std::string path = temp_path("sink_lines.jsonl");
  {
    JsonlStreamSink sink(path, {.buffer_events = 8});
    for (std::size_t i = 0; i < 50; ++i) {
      sink.write(instant_at(static_cast<double>(i), "line"));
    }
    sink.write_lane_name(Domain::kSim, 0, "dropped");  // no JSONL form
    sink.finalize();
  }
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const json::Value v = json::parse(line);
    EXPECT_EQ(v.at("name").as_string(), "line");
    ++lines;
  }
  EXPECT_EQ(lines, 50u);
  std::remove(path.c_str());
}

TEST(ObsSink, TeeFansOutToEverySink) {
  const std::string chrome_path = temp_path("sink_tee.json");
  const std::string jsonl_path = temp_path("sink_tee.jsonl");
  {
    ChromeStreamSink chrome(chrome_path);
    JsonlStreamSink jsonl(jsonl_path);
    TeeSink tee({&chrome, &jsonl});
    tee.write(instant_at(1.0, "both"));
    tee.finalize();
    EXPECT_EQ(chrome.events_written(), 1u);
    EXPECT_EQ(jsonl.events_written(), 1u);
  }
  EXPECT_NE(read_file(chrome_path).find("both"), std::string::npos);
  EXPECT_NE(read_file(jsonl_path).find("both"), std::string::npos);
  std::remove(chrome_path.c_str());
  std::remove(jsonl_path.c_str());
}

TEST(ObsSink, TeePropagatesPartialFailureAndKeepsHealthySinksWriting) {
  {
    std::ofstream probe("/dev/full");
    if (!probe.is_open()) {
      GTEST_SKIP() << "/dev/full not available on this platform";
    }
  }
  const std::string good_path = temp_path("sink_tee_partial.jsonl");
  JsonlStreamSink good(good_path, {.buffer_events = 4});
  JsonlStreamSink doomed("/dev/full", {.buffer_events = 4});
  TeeSink tee({&good, &doomed});
  ASSERT_TRUE(tee.healthy());
  for (std::size_t i = 0; i < 32; ++i) {
    tee.write(instant_at(static_cast<double>(i), "fanned"));
  }
  // One child on a full disk: the tee must read unhealthy — a partial
  // failure is not overall success — while the healthy child keeps going.
  EXPECT_FALSE(doomed.ok());
  EXPECT_TRUE(good.ok());
  EXPECT_FALSE(tee.healthy());
  tee.finalize();
  EXPECT_EQ(good.events_written(), 32u);
  std::ifstream in(good_path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 32u) << "the healthy sink must not lose events";
  std::remove(good_path.c_str());
}

TEST(ObsSink, StreamingTracerForwardsWithoutBuffering) {
  const std::string path = temp_path("sink_tracer.json");
  {
    ChromeStreamSink sink(path, {.buffer_events = 16});
    Tracer tracer(&sink);
    EXPECT_EQ(tracer.sink(), &sink);
    tracer.set_lane(5);
    for (int i = 0; i < 100; ++i) {
      tracer.instant(Duration::seconds(i), "cat", "streamed");
    }
    tracer.name_lane(Domain::kSim, 5, "lane-five");
    // Streaming mode: nothing retained, counts still tracked.
    EXPECT_TRUE(tracer.events().empty());
    EXPECT_FALSE(tracer.empty());
    EXPECT_EQ(tracer.count(Domain::kSim), 100u);
    sink.finalize();
    // 100 counters + the lane-name metadata event (queued through the same
    // buffer so ordering and memory bounds stay uniform).
    EXPECT_EQ(sink.events_written(), 101u);
  }
  EXPECT_NE(read_file(path).find("lane-five"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsSink, MergeIntoStreamingTracerDrainsBufferedSource) {
  const std::string path = temp_path("sink_merge.json");
  {
    ChromeStreamSink sink(path);
    Tracer merged(&sink);
    Tracer task;
    task.set_lane(1);
    task.instant(Duration::seconds(1), "x", "from-task");
    task.name_lane(Domain::kSim, 1, "task-1");
    merged.merge_from(std::move(task));
    EXPECT_TRUE(task.empty());  // NOLINT(bugprone-use-after-move): contract
    EXPECT_EQ(merged.count(Domain::kSim), 1u);
    sink.finalize();
  }
  const std::string text = read_file(path);
  EXPECT_NE(text.find("from-task"), std::string::npos);
  EXPECT_NE(text.find("task-1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsSink, StreamFailureMidRunDropsSinkToNotOk) {
  // /dev/full opens fine but every flush fails with ENOSPC — the mid-run
  // disk-full case. ok() must flip at the flush boundary, not stay healthy
  // until finalize().
  {
    std::ofstream probe("/dev/full");
    if (!probe.is_open()) {
      GTEST_SKIP() << "/dev/full not available on this platform";
    }
  }
  JsonlStreamSink sink("/dev/full", {.buffer_events = 8});
  ASSERT_TRUE(sink.ok());
  std::size_t i = 0;
  for (; i < 64 && sink.ok(); ++i) {
    sink.write(instant_at(static_cast<double>(i), "doomed"));
  }
  EXPECT_FALSE(sink.ok()) << "the failed flush must drop the sink state";
  EXPECT_LE(i, 16u) << "ok() must flip at the first failing flush boundary";
  const std::size_t written = sink.events_written();
  sink.write(instant_at(999.0, "after-failure"));  // dropped, no crash
  EXPECT_EQ(sink.events_written(), written);
  sink.finalize();  // must not crash
  EXPECT_FALSE(sink.ok());
}

TEST(ObsSink, UnwritablePathReportsNotOk) {
  ChromeStreamSink sink("/nonexistent-dir/trace.json");
  EXPECT_FALSE(sink.ok());
  sink.write(instant_at(1.0, "dropped"));
  sink.finalize();  // must not crash
}

}  // namespace
}  // namespace dcs::obs
