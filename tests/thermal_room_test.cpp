#include "thermal/room_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dcs::thermal {
namespace {

RoomModel make_room() {
  RoomModel::Params p;
  p.calibration_power = Power::megawatts(10);
  return RoomModel(p);
}

TEST(RoomModel, StartsAtSetpoint) {
  const RoomModel room = make_room();
  EXPECT_DOUBLE_EQ(room.temperature().c(), 25.0);
  EXPECT_FALSE(room.over_threshold());
}

TEST(RoomModel, SchneiderCalibration_FullGapHitsThresholdAtTenMinutes) {
  // The CFD study [22]: a heat gap equal to peak-normal power reaches the
  // critical threshold in ~10 minutes.
  RoomModel room = make_room();
  for (int i = 0; i < 595; ++i) {
    room.step(Power::megawatts(10), Power::zero(), Duration::seconds(1));
  }
  EXPECT_FALSE(room.over_threshold());  // just under at ~9:55
  for (int i = 0; i < 10; ++i) {
    room.step(Power::megawatts(10), Power::zero(), Duration::seconds(1));
  }
  EXPECT_NEAR(room.rise().c(), 10.0, 0.1);
  EXPECT_TRUE(room.over_threshold());
}

TEST(RoomModel, SchneiderCalibration_ResumeAtFiveMinutesNeverReachesThreshold) {
  // Cooling restored at minute 5: the threshold is never reached.
  RoomModel room = make_room();
  for (int i = 0; i < 300; ++i) {
    room.step(Power::megawatts(10), Power::zero(), Duration::seconds(1));
  }
  EXPECT_NEAR(room.rise().c(), 5.0, 1e-6);
  for (int i = 0; i < 3600; ++i) {
    room.step(Power::megawatts(10), Power::megawatts(10), Duration::seconds(1));
    EXPECT_FALSE(room.over_threshold());
  }
  // And it recovers toward the setpoint.
  EXPECT_LT(room.rise().c(), 1.0);
}

TEST(RoomModel, RiseProportionalToGap) {
  RoomModel room = make_room();
  for (int i = 0; i < 60; ++i) {
    room.step(Power::megawatts(15), Power::megawatts(10), Duration::seconds(1));
  }
  // 5 MW gap for 1 minute = 0.5 C with the default calibration.
  EXPECT_NEAR(room.rise().c(), 0.5, 1e-9);
}

TEST(RoomModel, NeverUndershootsSetpoint) {
  RoomModel room = make_room();
  for (int i = 0; i < 1000; ++i) {
    room.step(Power::zero(), Power::megawatts(10), Duration::seconds(1));
  }
  EXPECT_DOUBLE_EQ(room.rise().c(), 0.0);
  EXPECT_DOUBLE_EQ(room.temperature().c(), 25.0);
}

TEST(RoomModel, PeakTemperatureSticks) {
  RoomModel room = make_room();
  for (int i = 0; i < 120; ++i) {
    room.step(Power::megawatts(10), Power::zero(), Duration::seconds(1));
  }
  const Temperature peak = room.peak_temperature();
  EXPECT_NEAR(peak.c(), 27.0, 1e-6);
  for (int i = 0; i < 3600; ++i) {
    room.step(Power::zero(), Power::megawatts(10), Duration::seconds(1));
  }
  EXPECT_DOUBLE_EQ(room.peak_temperature().c(), peak.c());
}

TEST(RoomModel, TimeToThreshold) {
  RoomModel room = make_room();
  EXPECT_NEAR(room.time_to_threshold(Power::megawatts(10)).min(), 10.0, 1e-9);
  EXPECT_NEAR(room.time_to_threshold(Power::megawatts(20)).min(), 5.0, 1e-9);
  EXPECT_TRUE(room.time_to_threshold(Power::zero()).is_infinite());
  EXPECT_TRUE(room.time_to_threshold(Power::megawatts(-1)).is_infinite());
  // Partially heated room has less margin.
  for (int i = 0; i < 300; ++i) {
    room.step(Power::megawatts(10), Power::zero(), Duration::seconds(1));
  }
  EXPECT_NEAR(room.time_to_threshold(Power::megawatts(10)).min(), 5.0, 1e-6);
}

TEST(RoomModel, Validation) {
  RoomModel::Params p;
  p.calibration_power = Power::zero();
  EXPECT_THROW((void)RoomModel{p}, std::invalid_argument);
  p = {};
  p.calibration_power = Power::watts(1);
  p.threshold_rise = Temperature::celsius(0);
  EXPECT_THROW((void)RoomModel{p}, std::invalid_argument);
  RoomModel room = make_room();
  EXPECT_THROW((void)room.step(Power::megawatts(-1), Power::zero(), Duration::seconds(1)),
               std::invalid_argument);
  EXPECT_THROW((void)room.step(Power::zero(), Power::zero(), Duration::zero()),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcs::thermal
