#include "util/time_series.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dcs {
namespace {

TimeSeries ramp() {
  TimeSeries ts;
  ts.push_back(Duration::seconds(0), 0.0);
  ts.push_back(Duration::seconds(10), 10.0);
  ts.push_back(Duration::seconds(20), 0.0);
  return ts;
}

TEST(TimeSeries, PushBackEnforcesMonotoneTime) {
  TimeSeries ts;
  ts.push_back(Duration::seconds(1), 1.0);
  EXPECT_THROW((void)ts.push_back(Duration::seconds(1), 2.0), std::invalid_argument);
  EXPECT_THROW((void)ts.push_back(Duration::seconds(0.5), 2.0), std::invalid_argument);
}

TEST(TimeSeries, ConstructorValidatesOrder) {
  EXPECT_THROW((void)TimeSeries({{Duration::seconds(2), 0.0}, {Duration::seconds(1), 0.0}}),
               std::invalid_argument);
  EXPECT_NO_THROW(TimeSeries({{Duration::seconds(1), 0.0}, {Duration::seconds(2), 0.0}}));
}

TEST(TimeSeries, EmptyQueriesThrow) {
  const TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_THROW((void)ts.start_time(), std::invalid_argument);
  EXPECT_THROW((void)ts.end_time(), std::invalid_argument);
  EXPECT_THROW((void)ts.at(Duration::zero()), std::invalid_argument);
  EXPECT_THROW((void)ts.min_value(), std::invalid_argument);
  EXPECT_THROW((void)ts.integral(), std::invalid_argument);
}

TEST(TimeSeries, StepInterpolationHoldsValue) {
  const TimeSeries ts = ramp();
  EXPECT_DOUBLE_EQ(ts.at(Duration::seconds(5)), 0.0);
  EXPECT_DOUBLE_EQ(ts.at(Duration::seconds(10)), 10.0);
  EXPECT_DOUBLE_EQ(ts.at(Duration::seconds(15)), 10.0);
}

TEST(TimeSeries, LinearInterpolation) {
  const TimeSeries ts = ramp();
  EXPECT_DOUBLE_EQ(ts.at(Duration::seconds(5), Interpolation::kLinear), 5.0);
  EXPECT_DOUBLE_EQ(ts.at(Duration::seconds(15), Interpolation::kLinear), 5.0);
}

TEST(TimeSeries, AtClampsOutsideRange) {
  const TimeSeries ts = ramp();
  EXPECT_DOUBLE_EQ(ts.at(Duration::seconds(-5)), 0.0);
  EXPECT_DOUBLE_EQ(ts.at(Duration::seconds(100)), 0.0);
}

TEST(TimeSeries, SliceShiftsToZero) {
  const TimeSeries ts = ramp();
  const TimeSeries s = ts.slice(Duration::seconds(5), Duration::seconds(15));
  EXPECT_DOUBLE_EQ(s.start_time().sec(), 0.0);
  EXPECT_DOUBLE_EQ(s.end_time().sec(), 10.0);
  EXPECT_DOUBLE_EQ(s.at(Duration::seconds(6)), 10.0);  // original t=11
}

TEST(TimeSeries, SliceRejectsInvertedRange) {
  EXPECT_THROW((void)ramp().slice(Duration::seconds(10), Duration::seconds(5)),
               std::invalid_argument);
}

TEST(TimeSeries, ResampleFixedStep) {
  const TimeSeries r = ramp().resample(Duration::seconds(5));
  ASSERT_EQ(r.size(), 5u);
  EXPECT_DOUBLE_EQ(r[1].value, 0.0);
  EXPECT_DOUBLE_EQ(r[2].value, 10.0);
}

TEST(TimeSeries, MapAndScale) {
  const TimeSeries doubled = ramp().scaled(2.0);
  EXPECT_DOUBLE_EQ(doubled.max_value(), 20.0);
  const TimeSeries shifted = ramp().map([](double v) { return v + 1.0; });
  EXPECT_DOUBLE_EQ(shifted.min_value(), 1.0);
}

TEST(TimeSeries, NormalizedToPeak) {
  const TimeSeries n = ramp().normalized_to_peak();
  EXPECT_DOUBLE_EQ(n.max_value(), 1.0);
  TimeSeries zero;
  zero.push_back(Duration::zero(), 0.0);
  zero.push_back(Duration::seconds(1), 0.0);
  EXPECT_THROW((void)zero.normalized_to_peak(), std::invalid_argument);
}

TEST(TimeSeries, IntegralStepSemantics) {
  // 0 for 10 s then 10 for 10 s -> 100 units.
  EXPECT_DOUBLE_EQ(ramp().integral(), 100.0);
}

TEST(TimeSeries, TimeWeightedMean) {
  EXPECT_DOUBLE_EQ(ramp().time_weighted_mean(), 5.0);
}

TEST(TimeSeries, TimeAboveThreshold) {
  EXPECT_DOUBLE_EQ(ramp().time_above(5.0).sec(), 10.0);
  EXPECT_DOUBLE_EQ(ramp().time_above(100.0).sec(), 0.0);
  // The final sample carries no width under step semantics.
  EXPECT_DOUBLE_EQ(ramp().time_above(-1.0).sec(), 20.0);
}

TEST(TimeSeries, SumAlignsTimestamps) {
  TimeSeries a;
  a.push_back(Duration::seconds(0), 1.0);
  a.push_back(Duration::seconds(10), 2.0);
  TimeSeries b;
  b.push_back(Duration::seconds(5), 10.0);
  const TimeSeries s = TimeSeries::sum(a, b);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.at(Duration::seconds(0)), 11.0);  // b clamps to 10
  EXPECT_DOUBLE_EQ(s.at(Duration::seconds(5)), 11.0);
  EXPECT_DOUBLE_EQ(s.at(Duration::seconds(10)), 12.0);
}

TEST(TimeSeries, CursorAtMatchesBinarySearchEverywhere) {
  const TimeSeries ts = ramp();
  // Monotone forward walk, then backward jumps: the cursor overload must
  // return the exact same double as the binary-search overload at every
  // probe, for both interpolation modes.
  TimeSeries::Cursor step_cursor;
  TimeSeries::Cursor lerp_cursor;
  for (double t = -2.0; t <= 24.0; t += 0.5) {
    const Duration at = Duration::seconds(t);
    EXPECT_EQ(ts.at(at), ts.at(at, step_cursor)) << "t=" << t;
    EXPECT_EQ(ts.at(at, Interpolation::kLinear),
              ts.at(at, lerp_cursor, Interpolation::kLinear))
        << "t=" << t;
  }
  for (double t : {19.0, 3.5, 10.0, 0.0, 22.0, 7.25}) {
    const Duration at = Duration::seconds(t);
    EXPECT_EQ(ts.at(at), ts.at(at, step_cursor)) << "t=" << t;
  }
}

TEST(TimeSeries, CursorOnSingleSampleSeries) {
  TimeSeries ts;
  ts.push_back(Duration::seconds(3), 7.0);
  TimeSeries::Cursor cursor;
  EXPECT_DOUBLE_EQ(ts.at(Duration::seconds(0), cursor), 7.0);
  EXPECT_DOUBLE_EQ(ts.at(Duration::seconds(3), cursor), 7.0);
  EXPECT_DOUBLE_EQ(ts.at(Duration::seconds(9), cursor), 7.0);
  EXPECT_DOUBLE_EQ(ts.next_time_after(Duration::seconds(0), cursor).sec(), 3.0);
  EXPECT_TRUE(ts.next_time_after(Duration::seconds(3), cursor).is_infinite());
}

TEST(TimeSeries, NextTimeAfterWalksSampleBoundaries) {
  const TimeSeries ts = ramp();
  TimeSeries::Cursor cursor;
  EXPECT_DOUBLE_EQ(ts.next_time_after(Duration::seconds(-5), cursor).sec(), 0.0);
  EXPECT_DOUBLE_EQ(ts.next_time_after(Duration::seconds(0), cursor).sec(), 10.0);
  EXPECT_DOUBLE_EQ(ts.next_time_after(Duration::seconds(9.5), cursor).sec(), 10.0);
  EXPECT_DOUBLE_EQ(ts.next_time_after(Duration::seconds(10), cursor).sec(), 20.0);
  EXPECT_TRUE(ts.next_time_after(Duration::seconds(20), cursor).is_infinite());
  EXPECT_TRUE(ts.next_time_after(Duration::seconds(99), cursor).is_infinite());
  // Backward probe after a forward walk still lands exactly.
  EXPECT_DOUBLE_EQ(ts.next_time_after(Duration::seconds(2), cursor).sec(), 10.0);
}

TEST(TimeSeries, SpanOfSingleSampleIsZero) {
  TimeSeries ts;
  ts.push_back(Duration::seconds(3), 7.0);
  EXPECT_DOUBLE_EQ(ts.span().sec(), 0.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(), 7.0);
}

}  // namespace
}  // namespace dcs
