#include "thermal/tes_tank.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dcs::thermal {
namespace {

TesTank make_tank() {
  // Paper sizing: carries a 10 MW cooling load for 12 minutes.
  return TesTank("tes", {.capacity = Power::megawatts(10) * Duration::minutes(12)});
}

TEST(TesTank, PaperSizingLastsTwelveMinutes) {
  TesTank t = make_tank();
  int seconds = 0;
  while (t.discharge(Power::megawatts(10), Duration::seconds(1)) > Power::zero()) {
    ++seconds;
    ASSERT_LT(seconds, 100000);
  }
  EXPECT_NEAR(seconds, 720, 1);
}

TEST(TesTank, StartsFull) {
  TesTank t = make_tank();
  EXPECT_DOUBLE_EQ(t.state_of_charge(), 1.0);
  EXPECT_FALSE(t.empty());
}

TEST(TesTank, DischargeLimitedByRate) {
  TesTank t("tes", {.capacity = Energy::kilowatt_hours(100),
                    .max_discharge_rate = Power::kilowatts(50)});
  const Power got = t.discharge(Power::kilowatts(200), Duration::seconds(1));
  EXPECT_DOUBLE_EQ(got.kw(), 50.0);
}

TEST(TesTank, DischargeLimitedByCharge) {
  TesTank t("tes", {.capacity = Energy::joules(100)});
  const Power got = t.discharge(Power::watts(1000), Duration::seconds(1));
  EXPECT_DOUBLE_EQ(got.w(), 100.0);  // energy-limited average
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.discharge(Power::watts(1), Duration::seconds(1)).w(), 0.0);
}

TEST(TesTank, EnergyConservation) {
  TesTank t = make_tank();
  Energy out = Energy::zero();
  for (int i = 0; i < 100; ++i) {
    out += t.discharge(Power::megawatts(3), Duration::seconds(1)) *
           Duration::seconds(1);
  }
  EXPECT_NEAR((t.capacity() - t.stored()).j(), out.j(), 1.0);
  EXPECT_NEAR(t.total_discharged().j(), out.j(), 1.0);
}

TEST(TesTank, RechargeRefills) {
  TesTank t = make_tank();
  t.discharge(Power::megawatts(10), Duration::minutes(6));
  EXPECT_NEAR(t.state_of_charge(), 0.5, 1e-9);
  t.recharge(Power::megawatts(10), Duration::minutes(6));
  EXPECT_NEAR(t.state_of_charge(), 1.0, 1e-9);
  // Full tank accepts nothing more.
  EXPECT_DOUBLE_EQ(t.recharge(Power::megawatts(1), Duration::seconds(1)).w(), 0.0);
}

TEST(TesTank, RechargeLimitedByRate) {
  TesTank t("tes", {.capacity = Energy::kilowatt_hours(100),
                    .max_discharge_rate = Power::megawatts(1),
                    .max_recharge_rate = Power::kilowatts(10)});
  t.discharge(Power::kilowatts(500), Duration::seconds(60));
  EXPECT_DOUBLE_EQ(t.recharge(Power::kilowatts(100), Duration::seconds(1)).kw(),
                   10.0);
}

TEST(TesTank, Validation) {
  EXPECT_THROW((void)TesTank("t", {.capacity = Energy::zero()}), std::invalid_argument);
  TesTank t = make_tank();
  EXPECT_THROW((void)t.discharge(Power::watts(-1), Duration::seconds(1)),
               std::invalid_argument);
  EXPECT_THROW((void)t.discharge(Power::watts(1), Duration::zero()),
               std::invalid_argument);
  EXPECT_THROW((void)t.recharge(Power::watts(-1), Duration::seconds(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcs::thermal
