#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace dcs {
namespace {

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, HandlesNegatives) {
  RunningStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 50.0);
}

TEST(Mean, Basic) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
  EXPECT_THROW((void)mean(std::vector<double>{}), std::invalid_argument);
}

TEST(Percentile, EndpointsAndMedian) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75), 7.5);
}

TEST(Percentile, Validation) {
  EXPECT_THROW((void)percentile({}, 50), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 101), std::invalid_argument);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50), 7.0);
}

TEST(Correlation, PerfectPositiveAndNegative) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(correlation(a, b), 1.0, 1e-12);
  const std::vector<double> c = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(correlation(a, c), -1.0, 1e-12);
}

TEST(Correlation, Validation) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW((void)correlation(a, b), std::invalid_argument);
  const std::vector<double> constant = {3.0, 3.0};
  EXPECT_THROW((void)correlation(a, constant), std::invalid_argument);
}

}  // namespace
}  // namespace dcs
