// Perf-regression gate: record parsing for both supported formats and the
// compare/verdict logic the CI step relies on.
#include "exp/perf_gate.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/json.h"

namespace dcs::exp {
namespace {

constexpr const char* kBenchRecord = R"({
  "bench": "fig09_strategies", "wall_seconds": 0.5, "tasks": 11,
  "runs_per_second": 22.0, "threads": 4, "cells": 11, "replicates": 1,
  "scopes": {
    "exp.task": {"count": 11, "total_us": 110000, "max_us": 12000,
                 "mean_us": 10000},
    "sim.run": {"count": 22, "total_us": 44000, "max_us": 3000,
                "mean_us": 2000}
  }
})";

constexpr const char* kGoogleBenchmark = R"({
  "context": {"host_name": "ci"},
  "benchmarks": [
    {"name": "BM_FullMsRun/8", "run_type": "iteration",
     "real_time": 1.5, "time_unit": "ms"},
    {"name": "BM_FullMsRun/8", "run_type": "aggregate",
     "aggregate_name": "mean", "real_time": 99.0, "time_unit": "ms"},
    {"name": "BM_BreakerStep", "real_time": 120.0, "time_unit": "ns"}
  ]
})";

TEST(ExpPerfGate, ParsesBenchRecordScopesAndWall) {
  const auto times = perf_scope_times_us(json::parse(kBenchRecord));
  EXPECT_DOUBLE_EQ(times.at("exp.task"), 10000.0);
  EXPECT_DOUBLE_EQ(times.at("sim.run"), 2000.0);
  EXPECT_DOUBLE_EQ(times.at("wall"), 0.5e6);
}

TEST(ExpPerfGate, ParsesGoogleBenchmarkOutputSkippingAggregates) {
  const auto times = perf_scope_times_us(json::parse(kGoogleBenchmark));
  EXPECT_DOUBLE_EQ(times.at("BM_FullMsRun/8"), 1500.0);
  EXPECT_DOUBLE_EQ(times.at("BM_BreakerStep"), 0.12);
  EXPECT_EQ(times.size(), 2u);
}

TEST(ExpPerfGate, RejectsUnknownRecordShapes) {
  EXPECT_THROW(perf_scope_times_us(json::parse("{\"other\": 1}")),
               std::invalid_argument);
}

TEST(ExpPerfGate, IdenticalRecordsPass) {
  const auto times = perf_scope_times_us(json::parse(kBenchRecord));
  const PerfGateResult result = perf_gate_compare(times, times);
  EXPECT_TRUE(result.ok);
  for (const PerfGateRow& row : result.rows) {
    EXPECT_FALSE(row.regressed);
    EXPECT_DOUBLE_EQ(row.ratio, 1.0);
  }
}

TEST(ExpPerfGate, InjectedTwoXSlowdownFailsTheGate) {
  const auto baseline = perf_scope_times_us(json::parse(kBenchRecord));
  auto fresh = baseline;
  fresh["sim.run"] *= 2.0;
  const PerfGateResult result =
      perf_gate_compare(baseline, fresh, {.max_regress = 0.20});
  EXPECT_FALSE(result.ok);
  bool found = false;
  for (const PerfGateRow& row : result.rows) {
    if (row.name == "sim.run") {
      EXPECT_TRUE(row.regressed);
      EXPECT_DOUBLE_EQ(row.ratio, 2.0);
      found = true;
    } else {
      EXPECT_FALSE(row.regressed);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ExpPerfGate, NoiseFloorIgnoresTinyScopes) {
  const std::map<std::string, double> baseline{{"tiny", 10.0}};
  const std::map<std::string, double> fresh{{"tiny", 40.0}};  // 4x but tiny
  const PerfGateResult result =
      perf_gate_compare(baseline, fresh, {.max_regress = 0.20, .min_us = 50});
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_FALSE(result.rows[0].regressed);
}

TEST(ExpPerfGate, WarnOnlyReportsButPasses) {
  const std::map<std::string, double> baseline{{"slow", 1000.0}};
  const std::map<std::string, double> fresh{{"slow", 3000.0}};
  const PerfGateResult result = perf_gate_compare(
      baseline, fresh, {.max_regress = 0.20, .warn_only = true});
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_TRUE(result.rows[0].regressed);

  std::ostringstream out;
  write_perf_gate_report(out, result, {.warn_only = true});
  EXPECT_NE(out.str().find("WARN"), std::string::npos);
}

TEST(ExpPerfGate, TracksEntriesPresentOnOnlyOneSide) {
  const std::map<std::string, double> baseline{{"removed", 100.0},
                                               {"kept", 100.0}};
  const std::map<std::string, double> fresh{{"added", 100.0},
                                            {"kept", 100.0}};
  const PerfGateResult result = perf_gate_compare(baseline, fresh);
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.only_in_baseline.size(), 1u);
  EXPECT_EQ(result.only_in_baseline[0], "removed");
  ASSERT_EQ(result.only_in_fresh.size(), 1u);
  EXPECT_EQ(result.only_in_fresh[0], "added");
}

TEST(ExpPerfGate, ReportPrintsPassAndFailVerdicts) {
  const std::map<std::string, double> times{{"a", 100.0}};
  std::ostringstream pass_out;
  write_perf_gate_report(pass_out, perf_gate_compare(times, times), {});
  EXPECT_NE(pass_out.str().find("PASS"), std::string::npos);

  const std::map<std::string, double> slow{{"a", 300.0}};
  std::ostringstream fail_out;
  write_perf_gate_report(fail_out, perf_gate_compare(times, slow), {});
  EXPECT_NE(fail_out.str().find("FAIL"), std::string::npos);
  EXPECT_NE(fail_out.str().find("REGRESSED"), std::string::npos);
}

}  // namespace
}  // namespace dcs::exp
