// Perf-regression gate: record parsing for both supported formats and the
// compare/verdict logic the CI step relies on.
#include "exp/perf_gate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/aggregator.h"
#include "exp/reporter.h"
#include "obs/profile.h"
#include "util/json.h"

namespace dcs::exp {
namespace {

constexpr const char* kBenchRecord = R"({
  "bench": "fig09_strategies", "wall_seconds": 0.5, "tasks": 11,
  "runs_per_second": 22.0, "threads": 4, "cells": 11, "replicates": 1,
  "scopes": {
    "exp.task": {"count": 11, "total_us": 110000, "max_us": 12000,
                 "mean_us": 10000},
    "sim.run": {"count": 22, "total_us": 44000, "max_us": 3000,
                "mean_us": 2000}
  }
})";

constexpr const char* kGoogleBenchmark = R"({
  "context": {"host_name": "ci"},
  "benchmarks": [
    {"name": "BM_FullMsRun/8", "run_type": "iteration",
     "real_time": 1.5, "time_unit": "ms"},
    {"name": "BM_FullMsRun/8", "run_type": "aggregate",
     "aggregate_name": "mean", "real_time": 99.0, "time_unit": "ms"},
    {"name": "BM_BreakerStep", "real_time": 120.0, "time_unit": "ns"}
  ]
})";

TEST(ExpPerfGate, ParsesBenchRecordScopesAndWall) {
  const auto times = perf_scope_times_us(json::parse(kBenchRecord));
  EXPECT_DOUBLE_EQ(times.at("exp.task"), 10000.0);
  EXPECT_DOUBLE_EQ(times.at("sim.run"), 2000.0);
  EXPECT_DOUBLE_EQ(times.at("wall"), 0.5e6);
}

TEST(ExpPerfGate, ParsesGoogleBenchmarkOutputSkippingAggregates) {
  const auto times = perf_scope_times_us(json::parse(kGoogleBenchmark));
  EXPECT_DOUBLE_EQ(times.at("BM_FullMsRun/8"), 1500.0);
  EXPECT_DOUBLE_EQ(times.at("BM_BreakerStep"), 0.12);
  EXPECT_EQ(times.size(), 2u);
}

TEST(ExpPerfGate, RejectsUnknownRecordShapes) {
  EXPECT_THROW(perf_scope_times_us(json::parse("{\"other\": 1}")),
               std::invalid_argument);
}

TEST(ExpPerfGate, IdenticalRecordsPass) {
  const auto times = perf_scope_times_us(json::parse(kBenchRecord));
  const PerfGateResult result = perf_gate_compare(times, times);
  EXPECT_TRUE(result.ok);
  for (const PerfGateRow& row : result.rows) {
    EXPECT_FALSE(row.regressed);
    EXPECT_DOUBLE_EQ(row.ratio, 1.0);
  }
}

TEST(ExpPerfGate, InjectedTwoXSlowdownFailsTheGate) {
  const auto baseline = perf_scope_times_us(json::parse(kBenchRecord));
  auto fresh = baseline;
  fresh["sim.run"] *= 2.0;
  const PerfGateResult result =
      perf_gate_compare(baseline, fresh, {.max_regress = 0.20});
  EXPECT_FALSE(result.ok);
  bool found = false;
  for (const PerfGateRow& row : result.rows) {
    if (row.name == "sim.run") {
      EXPECT_TRUE(row.regressed);
      EXPECT_DOUBLE_EQ(row.ratio, 2.0);
      found = true;
    } else {
      EXPECT_FALSE(row.regressed);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ExpPerfGate, NoiseFloorIgnoresTinyScopes) {
  const std::map<std::string, double> baseline{{"tiny", 10.0}};
  const std::map<std::string, double> fresh{{"tiny", 40.0}};  // 4x but tiny
  const PerfGateResult result =
      perf_gate_compare(baseline, fresh, {.max_regress = 0.20, .min_us = 50});
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_FALSE(result.rows[0].regressed);
}

TEST(ExpPerfGate, WarnOnlyReportsButPasses) {
  const std::map<std::string, double> baseline{{"slow", 1000.0}};
  const std::map<std::string, double> fresh{{"slow", 3000.0}};
  const PerfGateResult result = perf_gate_compare(
      baseline, fresh, {.max_regress = 0.20, .warn_only = true});
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_TRUE(result.rows[0].regressed);

  std::ostringstream out;
  write_perf_gate_report(out, result, {.warn_only = true});
  EXPECT_NE(out.str().find("WARN"), std::string::npos);
}

TEST(ExpPerfGate, TracksEntriesPresentOnOnlyOneSide) {
  const std::map<std::string, double> baseline{{"removed", 100.0},
                                               {"kept", 100.0}};
  const std::map<std::string, double> fresh{{"added", 100.0},
                                            {"kept", 100.0}};
  const PerfGateResult result = perf_gate_compare(baseline, fresh);
  // Strict mode: a baseline scope the fresh record no longer produces
  // fails the gate — deleting a regressed benchmark must not turn it green.
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.only_in_baseline.size(), 1u);
  EXPECT_EQ(result.only_in_baseline[0], "removed");
  ASSERT_EQ(result.only_in_fresh.size(), 1u);
  EXPECT_EQ(result.only_in_fresh[0], "added");

  std::ostringstream out;
  write_perf_gate_report(out, result, {});
  EXPECT_NE(out.str().find("FAIL"), std::string::npos);
  EXPECT_NE(out.str().find("missing"), std::string::npos);
  EXPECT_NE(out.str().find("removed"), std::string::npos);
}

TEST(ExpPerfGate, MissingBaselineScopeOnlyWarnsInWarnOnlyMode) {
  const std::map<std::string, double> baseline{{"removed", 100.0}};
  const std::map<std::string, double> fresh{};
  const PerfGateResult result =
      perf_gate_compare(baseline, fresh, {.warn_only = true});
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.only_in_baseline.size(), 1u);

  std::ostringstream out;
  write_perf_gate_report(out, result, {.warn_only = true});
  EXPECT_NE(out.str().find("WARN"), std::string::npos);
  EXPECT_EQ(out.str().find("FAIL"), std::string::npos);
}

TEST(ExpPerfGate, ZeroBaselineReportsInfiniteRatioNotAWin) {
  const std::map<std::string, double> baseline{{"scope", 0.0}};
  const std::map<std::string, double> fresh{{"scope", 50.0}};
  const PerfGateResult result = perf_gate_compare(baseline, fresh);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_TRUE(std::isinf(result.rows[0].ratio));
  EXPECT_GT(result.rows[0].ratio, 0.0);
}

TEST(ExpPerfGate, SkipsScopesWithNullMeanInsteadOfThrowing) {
  const auto times = perf_scope_times_us(json::parse(R"({
    "bench": "b", "wall_seconds": 0.1,
    "scopes": {
      "dead": {"count": 1, "total_us": null, "max_us": null, "mean_us": null},
      "live": {"count": 1, "total_us": 7.0, "max_us": 7.0, "mean_us": 7.0}
    }
  })"));
  EXPECT_EQ(times.count("dead"), 0u);
  EXPECT_DOUBLE_EQ(times.at("live"), 7.0);
}

TEST(ExpPerfGate, PerfRecordRoundTripsNonFiniteScopeStats) {
  SweepSummary summary;
  summary.name = "roundtrip";
  summary.wall_seconds = 0.25;
  summary.task_count = 4;
  summary.executed_tasks = 4;

  obs::ProfileSummary scopes;
  scopes["finite"] = {.count = 2, .total_us = 123.456789012345,
                      .max_us = 100.0};
  scopes["poisoned"] = {.count = 1,
                        .total_us = std::numeric_limits<double>::infinity(),
                        .max_us = std::numeric_limits<double>::quiet_NaN()};

  std::ostringstream record;
  write_perf_record_json(record, summary, &scopes);

  // The record must stay parseable JSON — bare inf/nan from raw streaming
  // used to break the util/json parse in perf_gate.
  const json::Value doc = json::parse(record.str());
  EXPECT_EQ(doc.at("bench").as_string(), "roundtrip");
  EXPECT_EQ(doc.at("shard").as_string(), "0/1");
  EXPECT_DOUBLE_EQ(doc.at("resumed_tasks").as_number(), 0.0);

  const auto times = perf_scope_times_us(doc);
  EXPECT_DOUBLE_EQ(times.at("finite"), 123.456789012345 / 2.0);
  EXPECT_EQ(times.count("poisoned"), 0u) << "non-finite scopes are skipped";
  EXPECT_DOUBLE_EQ(times.at("wall"), 0.25e6);
}

TEST(ExpPerfGate, BuildTypeReadFromDcsContextOnly) {
  // The stamp the gate trusts is our own context key, written by the
  // benchmark binary from NDEBUG. google-benchmark's library_build_type
  // describes the *library* package, not our code, and must be ignored.
  EXPECT_EQ(perf_record_build_type(json::parse(R"({
    "context": {"dcs_build_type": "release", "library_build_type": "debug"},
    "benchmarks": []
  })")),
            "release");
  EXPECT_EQ(perf_record_build_type(json::parse(R"({
    "context": {"dcs_build_type": "debug"}, "benchmarks": []
  })")),
            "debug");
  // Unstamped records (older baselines, the scope format) report empty.
  EXPECT_EQ(perf_record_build_type(json::parse(R"({
    "context": {"library_build_type": "debug"}, "benchmarks": []
  })")),
            "");
  EXPECT_EQ(perf_record_build_type(json::parse(kGoogleBenchmark)), "");
  EXPECT_EQ(perf_record_build_type(json::parse(kBenchRecord)), "");
}

TEST(ExpPerfGate, ReportPrintsPassAndFailVerdicts) {
  const std::map<std::string, double> times{{"a", 100.0}};
  std::ostringstream pass_out;
  write_perf_gate_report(pass_out, perf_gate_compare(times, times), {});
  EXPECT_NE(pass_out.str().find("PASS"), std::string::npos);

  const std::map<std::string, double> slow{{"a", 300.0}};
  std::ostringstream fail_out;
  write_perf_gate_report(fail_out, perf_gate_compare(times, slow), {});
  EXPECT_NE(fail_out.str().find("FAIL"), std::string::npos);
  EXPECT_NE(fail_out.str().find("REGRESSED"), std::string::npos);
}

TEST(ExpPerfGate, TrendGatesOnNewestBaselineOnly) {
  // Slow creep: 100 -> 150 -> 190 us across the history; fresh is 200 us.
  // Against the newest (190) that is under the 20% step threshold, so the
  // gate passes even though the whole window doubled — drift belongs in the
  // table, not the exit code.
  const std::vector<PerfTrendBaseline> baselines{
      {"0001", {{"a", 100.0}}}, {"0002", {{"a", 150.0}}},
      {"0003", {{"a", 190.0}}}};
  const std::map<std::string, double> fresh{{"a", 200.0}};
  const PerfTrendResult trend = perf_trend(baselines, fresh, {});
  EXPECT_TRUE(trend.ok());
  ASSERT_EQ(trend.labels.size(), 3u);
  EXPECT_EQ(trend.labels.back(), "0003");
  const std::vector<double>& series = trend.series_us.at("a");
  ASSERT_EQ(series.size(), 4u);  // three baselines + fresh
  EXPECT_DOUBLE_EQ(series[0], 100.0);
  EXPECT_DOUBLE_EQ(series[3], 200.0);

  // A fresh record that regresses against the newest baseline fails, no
  // matter how forgiving the older history is.
  const std::map<std::string, double> slow{{"a", 400.0}};
  EXPECT_FALSE(perf_trend(baselines, slow, {}).ok());

  // Entries absent from part of the history hold NaN slots, never zeros.
  const std::vector<PerfTrendBaseline> gappy{
      {"old", {{"a", 100.0}}}, {"new", {{"a", 100.0}, {"b", 50.0}}}};
  const PerfTrendResult with_gap =
      perf_trend(gappy, {{"a", 100.0}, {"b", 50.0}}, {});
  EXPECT_TRUE(std::isnan(with_gap.series_us.at("b")[0]));
  EXPECT_DOUBLE_EQ(with_gap.series_us.at("b")[1], 50.0);

  EXPECT_THROW((void)perf_trend({}, fresh, {}), std::invalid_argument);
}

TEST(ExpPerfGate, TrendReportShowsDriftAndVerdict) {
  const std::vector<PerfTrendBaseline> baselines{
      {"0001", {{"a", 100.0}}}, {"0002", {{"a", 190.0}}}};
  std::ostringstream out;
  write_perf_trend_report(out, perf_trend(baselines, {{"a", 200.0}}, {}), {});
  const std::string text = out.str();
  EXPECT_NE(text.find("perf trend"), std::string::npos);
  EXPECT_NE(text.find("gating baseline: 0002"), std::string::npos);
  EXPECT_NE(text.find("x2.000 over window"), std::string::npos);
  EXPECT_NE(text.find("PASS"), std::string::npos);

  std::ostringstream fail_out;
  write_perf_trend_report(fail_out,
                          perf_trend(baselines, {{"a", 400.0}}, {}), {});
  EXPECT_NE(fail_out.str().find("FAIL"), std::string::npos);
}

}  // namespace
}  // namespace dcs::exp
