#include <gtest/gtest.h>

#include <stdexcept>

#include "core/heuristic_strategy.h"
#include "core/prediction_strategy.h"
#include "core/strategy.h"
#include "core/upper_bound_table.h"

namespace dcs::core {
namespace {

SprintContext ctx(double demand = 2.0, double max_degree = 4.0) {
  SprintContext c;
  c.demand = demand;
  c.max_degree = max_degree;
  c.max_demand_in_burst = demand;
  return c;
}

TEST(GreedyStrategy, AlwaysHardwareMax) {
  GreedyStrategy g;
  EXPECT_DOUBLE_EQ(g.upper_bound(ctx(1.5)), 4.0);
  EXPECT_DOUBLE_EQ(g.upper_bound(ctx(3.5, 3.0)), 3.0);
  EXPECT_EQ(g.name(), "greedy");
}

TEST(ConstantBoundStrategy, ClampsToHardware) {
  ConstantBoundStrategy s(2.5);
  EXPECT_DOUBLE_EQ(s.upper_bound(ctx()), 2.5);
  ConstantBoundStrategy high(5.0);
  EXPECT_DOUBLE_EQ(high.upper_bound(ctx()), 4.0);
  EXPECT_THROW((void)ConstantBoundStrategy(0.5), std::invalid_argument);
}

UpperBoundTable simple_table() {
  // Short bursts -> bound 4; long bursts -> bound 2.
  return UpperBoundTable(
      {Duration::minutes(1), Duration::minutes(20)}, {2.0, 3.5},
      {4.0, 4.0, 2.0, 2.0});
}

TEST(PredictionStrategy, LooksUpBoundForEquivalentDuration) {
  const UpperBoundTable table = simple_table();
  PredictionStrategy s(Duration::minutes(20), &table);
  SprintContext c = ctx(3.0);
  c.avg_degree = 1.0;  // early: equivalent duration 20 x 4 = 80 min -> long
  EXPECT_NEAR(s.upper_bound(c), 2.0, 1e-9);
  EXPECT_NEAR(s.last_equivalent_duration().min(), 80.0, 1e-9);
}

TEST(PredictionStrategy, EquivalentDurationShrinksWithRealSprinting) {
  const UpperBoundTable table = simple_table();
  PredictionStrategy s(Duration::minutes(1), &table);
  SprintContext c = ctx(3.0);
  c.avg_degree = 4.0;  // sprinting flat out: equivalent = predicted
  s.upper_bound(c);
  EXPECT_NEAR(s.last_equivalent_duration().min(), 1.0, 1e-9);
}

TEST(PredictionStrategy, ZeroPredictionActsGreedy) {
  // -100 % estimation error: predicted duration 0 -> shortest-burst column
  // of the table -> the most generous bound.
  const UpperBoundTable table = simple_table();
  PredictionStrategy s(Duration::zero(), &table);
  EXPECT_NEAR(s.upper_bound(ctx(3.0)), 4.0, 1e-9);
}

TEST(PredictionStrategy, RequiresTable) {
  EXPECT_THROW((void)PredictionStrategy(Duration::minutes(1), nullptr),
               std::invalid_argument);
}

TEST(HeuristicStrategy, InitialBoundUsesFlexibility) {
  HeuristicStrategy s(2.0, 1000.0, 0.10);
  EXPECT_NEAR(s.initial_bound(), 2.2, 1e-9);
  EXPECT_NEAR(s.planned_duration().sec(), 500.0, 1e-9);
}

TEST(HeuristicStrategy, BoundScalesWithEnergyVsTime) {
  HeuristicStrategy s(2.0, 1000.0, 0.10);
  SprintContext c = ctx(3.0);
  // On plan: RE == RT -> the initial bound.
  c.elapsed_in_burst = Duration::seconds(250);  // RT = 0.5
  c.remaining_energy_fraction = 0.5;
  EXPECT_NEAR(s.upper_bound(c), 2.2, 1e-9);
  // Draining faster than planned -> tighter.
  c.remaining_energy_fraction = 0.25;
  EXPECT_NEAR(s.upper_bound(c), 1.1, 1e-9);
  // Draining slower -> looser.
  c.remaining_energy_fraction = 1.0;
  EXPECT_NEAR(s.upper_bound(c), 4.0, 1e-9);  // clamped at hardware max
}

TEST(HeuristicStrategy, NeverBelowOne) {
  HeuristicStrategy s(2.0, 1000.0, 0.10);
  SprintContext c = ctx(3.0);
  c.elapsed_in_burst = Duration::zero();
  c.remaining_energy_fraction = 0.0;
  EXPECT_DOUBLE_EQ(s.upper_bound(c), 1.0);
}

TEST(HeuristicStrategy, OutlastedPlanStaysFinite) {
  HeuristicStrategy s(2.0, 1000.0, 0.10);
  SprintContext c = ctx(3.0);
  c.elapsed_in_burst = Duration::seconds(2000);  // past the plan
  c.remaining_energy_fraction = 0.1;
  const double bound = s.upper_bound(c);
  EXPECT_GE(bound, 1.0);
  EXPECT_LE(bound, 4.0);
}

TEST(HeuristicStrategy, DegenerateEstimateFloorsAtOne) {
  HeuristicStrategy s(0.5, 1000.0, 0.10);
  EXPECT_NEAR(s.initial_bound(), 1.1, 1e-9);
  EXPECT_THROW((void)HeuristicStrategy(2.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)HeuristicStrategy(2.0, 100.0, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace dcs::core
