#include "core/datacenter.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/ms_trace.h"
#include "workload/yahoo_trace.h"

namespace dcs::core {
namespace {

DataCenterConfig small_config() {
  DataCenterConfig c;
  c.fleet.pdu_count = 4;
  return c;
}

TEST(DataCenter, NoSprintBaselineIsUnity) {
  DataCenter dc(small_config());
  const RunResult r = dc.run(workload::generate_ms_trace(), nullptr,
                             {.mode = Mode::kNoSprint});
  EXPECT_NEAR(r.performance_factor, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.sprint_time.sec(), 0.0);
  EXPECT_FALSE(r.tripped);
}

TEST(DataCenter, GreedySprintBeatsNoSprint) {
  DataCenter dc(small_config());
  GreedyStrategy greedy;
  const RunResult r = dc.run(workload::generate_ms_trace(), &greedy);
  EXPECT_GT(r.performance_factor, 1.4);
  EXPECT_GT(r.sprint_time.min(), 3.0);
  EXPECT_FALSE(r.tripped);
}

TEST(DataCenter, RunsAreIndependent) {
  // Fresh subsystem state per run: repeating a run gives identical results.
  DataCenter dc(small_config());
  GreedyStrategy greedy;
  const TimeSeries trace = workload::generate_ms_trace();
  const RunResult a = dc.run(trace, &greedy);
  const RunResult b = dc.run(trace, &greedy);
  EXPECT_DOUBLE_EQ(a.performance_factor, b.performance_factor);
  EXPECT_DOUBLE_EQ(a.ups_energy.j(), b.ups_energy.j());
}

TEST(DataCenter, ResultsInvariantToPduCount) {
  // The documented scale invariance: 2 PDUs and 16 PDUs give the same
  // normalized results.
  DataCenterConfig c2 = small_config();
  c2.fleet.pdu_count = 2;
  DataCenterConfig c16 = small_config();
  c16.fleet.pdu_count = 16;
  GreedyStrategy greedy;
  const TimeSeries trace = workload::generate_yahoo_trace();
  const RunResult a = DataCenter(c2).run(trace, &greedy);
  const RunResult b = DataCenter(c16).run(trace, &greedy);
  EXPECT_NEAR(a.performance_factor, b.performance_factor, 1e-6);
  EXPECT_NEAR(a.sprint_time.sec(), b.sprint_time.sec(), 1.5);
}

TEST(DataCenter, RecorderChannelsPresent) {
  DataCenter dc(small_config());
  GreedyStrategy greedy;
  const RunResult r = dc.run(workload::generate_yahoo_trace(), &greedy,
                             {.record = true});
  for (const char* channel :
       {"demand", "achieved", "achieved_nosprint", "degree", "bound", "cores",
        "phase", "server_mw", "cooling_mw", "ups_mw", "dc_load_mw", "room_c",
        "ups_soc", "tes_soc", "dc_cb_heat", "pdu_cb_heat", "supply",
        "degradation"}) {
    EXPECT_TRUE(r.recorder.has(channel)) << channel;
  }
  // Injector-only channels stay absent on a fault-free run.
  EXPECT_FALSE(r.recorder.has("faults_active"));
  EXPECT_FALSE(r.recorder.has("measured_demand"));
  EXPECT_EQ(r.recorder.series("demand").size(), 1800u);
}

TEST(DataCenter, RecorderEmptyWithoutOptIn) {
  DataCenter dc(small_config());
  GreedyStrategy greedy;
  const RunResult r = dc.run(workload::generate_yahoo_trace(), &greedy);
  EXPECT_TRUE(r.recorder.channels().empty());
}

TEST(DataCenter, AchievedNeverExceedsDemand) {
  DataCenter dc(small_config());
  GreedyStrategy greedy;
  const RunResult r = dc.run(workload::generate_ms_trace(), &greedy,
                             {.record = true});
  const TimeSeries& demand = r.recorder.series("demand");
  const TimeSeries& achieved = r.recorder.series("achieved");
  for (std::size_t i = 0; i < demand.size(); ++i) {
    ASSERT_LE(achieved[i].value, demand[i].value + 1e-9);
  }
}

TEST(DataCenter, UncontrolledTripsOnMsTrace) {
  DataCenter dc(small_config());
  const RunResult r = dc.run(workload::generate_ms_trace(), nullptr,
                             {.mode = Mode::kUncontrolled});
  EXPECT_TRUE(r.tripped);
  EXPECT_FALSE(r.trip_time.is_infinite());
  EXPECT_LT(r.performance_factor, 0.6);  // the shutdown is disastrous
}

TEST(DataCenter, SocExtremaTracked) {
  DataCenter dc(small_config());
  GreedyStrategy greedy;
  const RunResult r = dc.run(workload::generate_ms_trace(), &greedy);
  EXPECT_LT(r.min_ups_soc, 0.5);
  EXPECT_GE(r.min_ups_soc, 0.0);
  EXPECT_LE(r.min_tes_soc, 1.0);
  EXPECT_GE(r.min_tes_soc, 0.0);
}

TEST(DataCenter, DropFractionConsistentWithPerformance) {
  DataCenter dc(small_config());
  GreedyStrategy greedy;
  const RunResult nosprint = dc.run(workload::generate_yahoo_trace(), nullptr,
                                    {.mode = Mode::kNoSprint});
  const RunResult sprint = dc.run(workload::generate_yahoo_trace(), &greedy);
  EXPECT_LT(sprint.drop_fraction, nosprint.drop_fraction);
}

TEST(DataCenter, AvgSprintDegreeReported) {
  DataCenter dc(small_config());
  GreedyStrategy greedy;
  const RunResult r = dc.run(workload::generate_yahoo_trace(), &greedy);
  EXPECT_GT(r.avg_sprint_degree, 1.2);
  EXPECT_LE(r.avg_sprint_degree, 4.0);
  const RunResult flat = dc.run(
      TimeSeries{{{Duration::zero(), 0.5}, {Duration::minutes(5), 0.5}}},
      &greedy);
  EXPECT_DOUBLE_EQ(flat.avg_sprint_degree, 1.0);
}

TEST(DataCenter, BudgetDegreeSecondsPositiveAndStable) {
  DataCenter dc(small_config());
  const double a = dc.budget_degree_seconds();
  const double b = dc.budget_degree_seconds();
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(DataCenter, NoTesShortensSprint) {
  // Section V: "For some data centers without TES ... we can still enable
  // sprinting (though the duration is shorter)". The effect shows when the
  // thermal budget binds before the stored electrical energy does, so use a
  // generous battery and a long moderate burst.
  DataCenterConfig with = small_config();
  with.battery_per_server.capacity = Charge::amp_hours(2.0);
  DataCenterConfig without = with;
  without.has_tes = false;
  workload::YahooTraceParams p;
  p.length = Duration::minutes(32);
  p.burst_degree = 3.2;
  p.burst_duration = Duration::minutes(24);
  const TimeSeries trace = workload::generate_yahoo_trace(p);
  ConstantBoundStrategy bound(2.4);
  const RunResult rw = DataCenter(with).run(trace, &bound);
  const RunResult ro = DataCenter(without).run(trace, &bound);
  EXPECT_GT(rw.performance_factor, ro.performance_factor);
  EXPECT_GT(rw.sprint_time, ro.sprint_time);
  EXPECT_GT(ro.performance_factor, 1.0);  // still better than nothing
}

TEST(DataCenter, EmptyTraceRejected) {
  DataCenter dc(small_config());
  EXPECT_THROW((void)dc.run(TimeSeries{}, nullptr, {.mode = Mode::kNoSprint}),
               std::invalid_argument);
}

TEST(DataCenter, UpsEnergyWithinCapacity) {
  DataCenter dc(small_config());
  GreedyStrategy greedy;
  const RunResult r = dc.run(workload::generate_ms_trace(), &greedy);
  const DataCenterConfig& c = dc.config();
  const Energy bank =
      c.battery_per_server.capacity.at_volts(c.battery_per_server.bus_voltage) *
      static_cast<double>(c.fleet.servers_per_pdu * c.fleet.pdu_count);
  // Slow recharge can top the banks up a little between bursts, so allow a
  // modest margin above one full capacity.
  EXPECT_LE(r.ups_energy.j(), bank.j() * 1.2);
}

}  // namespace
}  // namespace dcs::core
