#include "compute/throughput_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace dcs::compute {
namespace {

TEST(ThroughputModel, NormalizedToNormalCores) {
  const ThroughputModel m;
  EXPECT_DOUBLE_EQ(m.throughput(12), 1.0);
  EXPECT_DOUBLE_EQ(m.throughput_for_degree(1.0), 1.0);
}

TEST(ThroughputModel, SublinearScaling) {
  const ThroughputModel m;  // alpha = 0.85
  EXPECT_NEAR(m.throughput(48), std::pow(4.0, 0.85), 1e-12);
  EXPECT_LT(m.throughput(48), 4.0);
  EXPECT_GT(m.throughput(48), 3.0);
}

TEST(ThroughputModel, PerCoreThroughputDecreases) {
  // The paper's SPECjbb2005 observation: per-core throughput decreases as
  // cores are added.
  const ThroughputModel m;
  double prev = 1e9;
  for (std::size_t n = 12; n <= 48; n += 4) {
    const double per_core = m.throughput(n) / static_cast<double>(n);
    EXPECT_LT(per_core, prev);
    prev = per_core;
  }
}

TEST(ThroughputModel, PerCoreEfficiency) {
  const ThroughputModel m;
  EXPECT_DOUBLE_EQ(m.per_core_efficiency(12), 1.0);
  EXPECT_NEAR(m.per_core_efficiency(48), std::pow(4.0, -0.15), 1e-12);
  EXPECT_LT(m.per_core_efficiency(48), 1.0);
}

TEST(ThroughputModel, CoresForDemandCoversIt) {
  const ThroughputModel m;
  for (double d = 0.1; d <= 3.2; d += 0.1) {
    const std::size_t n = m.cores_for_demand(d);
    EXPECT_GE(m.throughput(n), d - 1e-9) << "demand " << d;
    if (n > 1) {
      EXPECT_LT(m.throughput(n - 1), d) << "demand " << d;
    }
  }
}

TEST(ThroughputModel, CoresForDemandEdges) {
  const ThroughputModel m;
  EXPECT_EQ(m.cores_for_demand(0.0), 0u);
  EXPECT_EQ(m.cores_for_demand(1.0), 12u);
}

TEST(ThroughputModel, DegreeForDemandInverse) {
  const ThroughputModel m;
  for (double d = 0.5; d <= 3.5; d += 0.5) {
    EXPECT_NEAR(m.throughput_for_degree(m.degree_for_demand(d)), d, 1e-12);
  }
}

TEST(ThroughputModel, PerfectScalingAlphaOne) {
  const ThroughputModel m({.alpha = 1.0, .normal_cores = 12});
  EXPECT_DOUBLE_EQ(m.throughput(48), 4.0);
  EXPECT_DOUBLE_EQ(m.per_core_efficiency(48), 1.0);
  EXPECT_EQ(m.cores_for_demand(2.0), 24u);
}

TEST(ThroughputModel, Validation) {
  EXPECT_THROW((void)ThroughputModel({.alpha = 0.0, .normal_cores = 12}),
               std::invalid_argument);
  EXPECT_THROW((void)ThroughputModel({.alpha = 1.1, .normal_cores = 12}),
               std::invalid_argument);
  EXPECT_THROW((void)ThroughputModel({.alpha = 0.9, .normal_cores = 0}),
               std::invalid_argument);
  const ThroughputModel m;
  EXPECT_THROW((void)m.cores_for_demand(-1.0), std::invalid_argument);
  EXPECT_THROW((void)m.per_core_efficiency(0), std::invalid_argument);
}

}  // namespace
}  // namespace dcs::compute
