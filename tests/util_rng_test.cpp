#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace dcs {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
  EXPECT_LT(lo, -1.5);  // the range is actually explored
  EXPECT_GT(hi, 2.5);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(42);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ForkIsDeterministic) {
  const Rng parent(123);
  EXPECT_EQ(parent.fork_seed(0), Rng(123).fork_seed(0));
  EXPECT_EQ(parent.fork_seed(7), Rng(123).fork_seed(7));
  Rng a = parent.fork(5);
  Rng b = Rng(123).fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng with_fork(9), plain(9);
  (void)with_fork.fork_seed(0);
  (void)with_fork.fork(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(with_fork.next_u64(), plain.next_u64());
  }
}

TEST(Rng, ForkDependsOnParentState) {
  Rng advanced(9);
  (void)advanced.next_u64();
  EXPECT_NE(advanced.fork_seed(0), Rng(9).fork_seed(0));
}

TEST(Rng, ForkStreamsAreDisjoint) {
  const Rng parent(0x5EEDC0DE);
  std::set<std::uint64_t> seen;
  const int streams = 8, draws = 1000;
  for (int s = 0; s < streams; ++s) {
    Rng child = parent.fork(static_cast<std::uint64_t>(s));
    for (int i = 0; i < draws; ++i) seen.insert(child.next_u64());
  }
  // Distinct streams must not collide (u64 birthday collisions over 8k
  // draws are astronomically unlikely for independent streams).
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(streams * draws));
}

TEST(Rng, ForkStreamsAreUncorrelated) {
  const Rng parent(77);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  const int n = 20000;
  double sum_a = 0, sum_b = 0, sum_ab = 0, sq_a = 0, sq_b = 0;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform();
    const double y = b.uniform();
    sum_a += x;
    sum_b += y;
    sum_ab += x * y;
    sq_a += x * x;
    sq_b += y * y;
  }
  const double mean_a = sum_a / n, mean_b = sum_b / n;
  const double cov = sum_ab / n - mean_a * mean_b;
  const double var_a = sq_a / n - mean_a * mean_a;
  const double var_b = sq_b / n - mean_b * mean_b;
  const double corr = cov / std::sqrt(var_a * var_b);
  EXPECT_LT(std::abs(corr), 0.05);
}

TEST(Rng, ChainedForkMatchesSweepSeedingContract) {
  // Rng(base).fork(cell).fork_seed(rep) must depend only on (base, cell,
  // rep) — recomputing from scratch gives the same seed.
  const std::uint64_t base = 0xABCDEF;
  const std::uint64_t s1 = Rng(base).fork(3).fork_seed(2);
  const std::uint64_t s2 = Rng(base).fork(3).fork_seed(2);
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, Rng(base).fork(3).fork_seed(1));
  EXPECT_NE(s1, Rng(base).fork(2).fork_seed(2));
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

}  // namespace
}  // namespace dcs
