#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace dcs {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
  EXPECT_LT(lo, -1.5);  // the range is actually explored
  EXPECT_GT(hi, 2.5);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(42);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

}  // namespace
}  // namespace dcs
