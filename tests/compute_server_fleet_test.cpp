#include <gtest/gtest.h>

#include <stdexcept>

#include "compute/fleet.h"
#include "compute/server.h"

namespace dcs::compute {
namespace {

TEST(Server, PaperPowerNumbers) {
  const Server server;
  // 20 W non-CPU + 5 W chip + 12 x 2.5 W = 55 W peak normal.
  EXPECT_DOUBLE_EQ(server.peak_normal_power().w(), 55.0);
  // All 48 cores: 20 + 125 = 145 W.
  EXPECT_DOUBLE_EQ(server.peak_sprint_power().w(), 145.0);
  // Idle with 12 cores on (paper model: unutilized cores draw nothing).
  EXPECT_DOUBLE_EQ(server.idle_power().w(), 25.0);
}

TEST(Server, PowerComposition) {
  const Server server;
  EXPECT_DOUBLE_EQ(server.power(24, 0.5).w(), 20.0 + 5.0 + 2.5 * 12.0);
}

TEST(Fleet, PaperScale) {
  const Fleet fleet;
  // 909 PDUs x 200 servers = 181,800 servers ~ 10 MW peak normal.
  EXPECT_EQ(fleet.server_count(), 181800u);
  EXPECT_NEAR(fleet.peak_normal_power().mw(), 10.0, 0.01);
  EXPECT_NEAR(fleet.peak_sprint_power().mw(), 26.36, 0.01);
}

TEST(Fleet, OperateServesDemandWithinCap) {
  const Fleet fleet;
  const auto op = fleet.operate(0.5, 4.0);
  EXPECT_EQ(op.active_cores, 12u);  // never below normal
  EXPECT_DOUBLE_EQ(op.achieved, 0.5);
  EXPECT_DOUBLE_EQ(op.utilization, 0.5);
}

TEST(Fleet, OperateActivatesJustEnoughCores) {
  const Fleet fleet;
  const auto op = fleet.operate(2.0, 4.0);
  // Just enough cores: capacity at op.cores covers 2.0, one fewer does not.
  EXPECT_GE(fleet.throughput().throughput(op.active_cores), 2.0);
  EXPECT_LT(fleet.throughput().throughput(op.active_cores - 1), 2.0);
  EXPECT_NEAR(op.utilization, 2.0 / fleet.throughput().throughput(op.active_cores),
              1e-12);
}

TEST(Fleet, OperateRespectsDegreeCap) {
  const Fleet fleet;
  const auto op = fleet.operate(3.5, 2.0);
  EXPECT_EQ(op.active_cores, 24u);
  EXPECT_DOUBLE_EQ(op.degree, 2.0);
  EXPECT_LT(op.achieved, 3.5);  // capped
  EXPECT_DOUBLE_EQ(op.utilization, 1.0);
}

TEST(Fleet, AchievedNeverExceedsDemandOrCapacity) {
  const Fleet fleet;
  for (double demand = 0.0; demand <= 4.5; demand += 0.25) {
    for (double cap = 1.0; cap <= 4.0; cap += 0.5) {
      const auto op = fleet.operate(demand, cap);
      EXPECT_LE(op.achieved, demand + 1e-12);
      EXPECT_LE(op.achieved, fleet.capacity(cap) + 1e-12);
      EXPECT_GE(op.utilization, 0.0);
      EXPECT_LE(op.utilization, 1.0);
    }
  }
}

TEST(Fleet, PowerAggregation) {
  const Fleet fleet;
  const auto op = fleet.operate(1.0, 1.0);
  EXPECT_DOUBLE_EQ(op.per_server.w(), 55.0);
  EXPECT_DOUBLE_EQ(op.per_pdu.kw(), 11.0);
  EXPECT_NEAR(op.fleet_total.mw(), 10.0, 0.01);
}

TEST(Fleet, PowerMonotoneInDemand) {
  const Fleet fleet;
  Power prev = Power::zero();
  for (double demand = 0.1; demand <= 4.0; demand += 0.1) {
    const auto op = fleet.operate(demand, 4.0);
    EXPECT_GE(op.per_server + Power::watts(1e-9), prev);
    prev = op.per_server;
  }
}

TEST(Fleet, CapacityClampsAtHardware) {
  const Fleet fleet;
  EXPECT_DOUBLE_EQ(fleet.capacity(1.0), 1.0);
  EXPECT_DOUBLE_EQ(fleet.capacity(99.0), fleet.capacity(4.0));
}

TEST(Fleet, OperateWithCoresValidation) {
  const Fleet fleet;
  EXPECT_THROW((void)fleet.operate_with_cores(1.0, 0), std::invalid_argument);
  EXPECT_THROW((void)fleet.operate_with_cores(1.0, 49), std::invalid_argument);
  EXPECT_THROW((void)fleet.operate(-0.1, 4.0), std::invalid_argument);
  EXPECT_THROW((void)fleet.operate(1.0, 0.5), std::invalid_argument);
}

TEST(Fleet, MismatchedNormalCoresRejected) {
  Fleet::Params p;
  p.throughput.normal_cores = 10;  // chip says 12
  EXPECT_THROW((void)Fleet{p}, std::invalid_argument);
}

}  // namespace
}  // namespace dcs::compute
