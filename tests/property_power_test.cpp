// Parameterized property sweeps over the power substrate: conservation,
// monotonicity and safety invariants that must hold for every parameter
// combination, not just the paper's defaults.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "power/battery.h"
#include "power/circuit_breaker.h"
#include "power/trip_curve.h"
#include "util/rng.h"

namespace dcs::power {
namespace {

// ---------------------------------------------------------------------------
// Battery: energy conservation and bounds across sizes/rates/efficiencies.
// ---------------------------------------------------------------------------

using BatteryParams = std::tuple<double /*Ah*/, double /*volts*/,
                                 double /*discharge W*/, double /*eff*/>;

class BatteryProperty : public ::testing::TestWithParam<BatteryParams> {};

TEST_P(BatteryProperty, ConservationAndBoundsUnderRandomDutyCycle) {
  const auto [ah, volts, max_w, eff] = GetParam();
  Battery::Params params;
  params.capacity = Charge::amp_hours(ah);
  params.bus_voltage = volts;
  params.max_discharge = Power::watts(max_w);
  params.max_recharge = Power::watts(max_w / 4.0);
  params.recharge_efficiency = eff;
  Battery battery("b", params);

  Rng rng(0xB177E5);
  Energy delivered = Energy::zero();
  Energy charged_into_cell = Energy::zero();
  for (int i = 0; i < 2000; ++i) {
    const Duration dt = Duration::seconds(1);
    if (rng.uniform() < 0.5) {
      const Energy before = battery.stored();
      const Power got =
          battery.discharge(Power::watts(rng.uniform(0.0, 2.0 * max_w)), dt);
      delivered += got * dt;
      ASSERT_NEAR((before - battery.stored()).j(), (got * dt).j(), 1e-6);
      ASSERT_LE(got.w(), max_w + 1e-9);
    } else {
      const Energy before = battery.stored();
      const Power grid =
          battery.recharge(Power::watts(rng.uniform(0.0, max_w)), dt);
      charged_into_cell += battery.stored() - before;
      // Grid draw covers the stored energy plus conversion losses.
      ASSERT_NEAR((battery.stored() - before).j(), (grid * dt).j() * eff, 1e-6);
    }
    ASSERT_GE(battery.soc(), -1e-12);
    ASSERT_LE(battery.soc(), 1.0 + 1e-12);
  }
  // Global ledger: what went out + what remains == initial + what went in.
  ASSERT_NEAR((delivered + battery.stored()).j(),
              (battery.capacity() + charged_into_cell).j(), 1e-3);
  ASSERT_NEAR(battery.total_discharged().j(), delivered.j(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatteryProperty,
    ::testing::Combine(::testing::Values(0.25, 0.5, 2.0),
                       ::testing::Values(11.0, 48.0),
                       ::testing::Values(50.0, 150.0),
                       ::testing::Values(0.8, 1.0)));

// ---------------------------------------------------------------------------
// Trip curve: the accumulator model must reproduce the closed-form curve
// for every coefficient and overload level.
// ---------------------------------------------------------------------------

using CurveParams = std::tuple<double /*coeff*/, double /*ratio*/>;

class TripCurveProperty : public ::testing::TestWithParam<CurveParams> {};

TEST_P(TripCurveProperty, AccumulatorMatchesClosedForm) {
  const auto [coeff, ratio] = GetParam();
  TripCurveParams curve_params;
  curve_params.thermal_coeff_s = coeff;
  CircuitBreaker cb("cb", {.rated = Power::watts(1000),
                           .curve = TripCurve{curve_params}});
  const Duration expected = TripCurve{curve_params}.time_to_trip(ratio);
  ASSERT_FALSE(expected.is_infinite());
  int steps = 0;
  while (!cb.tripped() && steps < 1000000) {
    cb.apply_load(Power::watts(1000.0 * ratio), Duration::seconds(0.5));
    ++steps;
  }
  EXPECT_NEAR(steps * 0.5, expected.sec(), 0.51 + expected.sec() * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TripCurveProperty,
    ::testing::Combine(::testing::Values(5.0, 21.6, 100.0),
                       ::testing::Values(1.2, 1.6, 2.5, 4.0)));

// ---------------------------------------------------------------------------
// Breaker duty cycles: alternating overload/cool-down at or below the
// governor's bound never trips; sustained violation of the bound does.
// ---------------------------------------------------------------------------

class DutyCycleProperty : public ::testing::TestWithParam<double> {};

TEST_P(DutyCycleProperty, GovernorBoundIsSafeUnderAnyDuty) {
  const double duty = GetParam();  // fraction of each minute spent loaded
  CircuitBreaker cb("cb", {.rated = Power::watts(1000)});
  for (int minute = 0; minute < 120; ++minute) {
    for (int s = 0; s < 60; ++s) {
      // Re-query the governor every second, exactly like the controller.
      const Power allowed = cb.max_load_for(Duration::minutes(1));
      const Power load = (s < duty * 60.0) ? allowed : Power::watts(500);
      cb.apply_load(load, Duration::seconds(1));
      ASSERT_FALSE(cb.tripped()) << "minute " << minute << " s " << s;
      ASSERT_GE(cb.time_to_trip_at(allowed).sec(), 58.9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DutyCycleProperty,
                         ::testing::Values(0.1, 0.5, 0.9, 1.0));

TEST(DutyCycle, ExceedingTheGovernorBoundTrips) {
  CircuitBreaker cb("cb", {.rated = Power::watts(1000)});
  int steps = 0;
  while (!cb.tripped() && steps < 100000) {
    const Power allowed = cb.max_load_for(Duration::minutes(1));
    cb.apply_load(allowed * 1.25, Duration::seconds(1));
    ++steps;
  }
  EXPECT_TRUE(cb.tripped());
}

// ---------------------------------------------------------------------------
// max_load_for is monotone: hotter element or longer hold -> lower bound.
// ---------------------------------------------------------------------------

TEST(MaxLoadFor, MonotoneInHoldAndHeat) {
  CircuitBreaker cb("cb", {.rated = Power::watts(1000)});
  Power prev = Power::watts(1e12);
  for (double hold_s : {1.0, 10.0, 60.0, 600.0, 7200.0}) {
    const Power p = cb.max_load_for(Duration::seconds(hold_s));
    EXPECT_LE(p, prev);
    prev = p;
  }
  const Power cold = cb.max_load_for(Duration::minutes(1));
  for (int i = 0; i < 30; ++i) cb.apply_load(Power::watts(1600), Duration::seconds(1));
  EXPECT_LT(cb.max_load_for(Duration::minutes(1)), cold);
}

}  // namespace
}  // namespace dcs::power
