// Cross-process timeline merge (exp/timeline.h): source discovery and
// ordering, wall-clock alignment onto the shared epoch, per-source Chrome
// pids, folded-stack aggregation, headerless-stream degradation, and the
// byte-identical re-merge the dispatcher's restart story depends on.
#include "exp/timeline.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/query.h"
#include "util/json.h"

namespace dcs::exp {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/timeline_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void write_file(const std::string& path, const std::string& text) {
  fs::create_directories(fs::path(path).parent_path());
  std::ofstream out(path, std::ios::binary);
  out << text;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string header(const std::string& name, int pid,
                   std::int64_t epoch_unix_us) {
  std::ostringstream out;
  out << "{\"t\":\"header\",\"telemetry\":1,\"name\":\"" << name
      << "\",\"pid\":" << pid << ",\"shard\":\"\",\"epoch_unix_us\":"
      << epoch_unix_us << "}\n";
  return out.str();
}

std::string wall_instant(double ts_us, const std::string& name) {
  std::ostringstream out;
  out << "{\"t\":\"ev\",\"domain\":\"wall\",\"ph\":\"i\",\"ts\":" << ts_us
      << ",\"lane\":0,\"cat\":\"c\",\"name\":\"" << name << "\"}\n";
  return out.str();
}

/// A dispatcher stream (epoch 1000) and two shard streams whose epochs are
/// 1000 us and 3000 us later; shard 1 has a crashed first attempt plus a
/// clean second one.
std::string build_work_dir(const std::string& tag) {
  const std::string dir = fresh_dir(tag);
  write_file(dir + "/dispatcher_telemetry.jsonl",
             header("dispatcher", 100, 1000) + wall_instant(5.0, "spawn") +
                 "{\"t\":\"end\",\"wall_us\":100.0,\"events\":1}\n");
  write_file(dir + "/shard_0/telemetry_0001.jsonl",
             header("fake", 101, 2000) +
                 "{\"t\":\"lane\",\"domain\":\"sim\",\"lane\":0,"
                 "\"name\":\"tasks\"}\n"
                 "{\"t\":\"ev\",\"domain\":\"sim\",\"ph\":\"X\",\"ts\":10,"
                 "\"dur\":20,\"lane\":0,\"cat\":\"c\",\"name\":\"work\","
                 "\"args\":{\"index\":1}}\n" +
                 wall_instant(7.0, "tick") +
                 "{\"t\":\"stack\",\"stack\":\"fake;task\",\"count\":3}\n"
                 "{\"t\":\"end\",\"wall_us\":50.0,\"events\":2}\n");
  // Attempt 1 died mid-write: no end marker, torn trailing line.
  write_file(dir + "/shard_1/telemetry_0001.jsonl",
             header("fake", 102, 4000) + wall_instant(2.0, "tick") +
                 "{\"t\":\"stack\",\"stack\":\"fake;task\",\"count\":1}\n"
                 "{\"t\":\"ev\",\"domain\":\"wall\",\"ph\":\"i\",\"ts\":9");
  write_file(dir + "/shard_1/telemetry_0002.jsonl",
             header("fake", 103, 4500) + wall_instant(3.0, "tick") +
                 "{\"t\":\"stack\",\"stack\":\"fake;task\",\"count\":2}\n"
                 "{\"t\":\"end\",\"wall_us\":20.0,\"events\":1}\n");
  // Distractors discovery must ignore.
  write_file(dir + "/shard_0/attempt_1.log", "worker stdout\n");
  write_file(dir + "/shard_0/fake.ckpt.jsonl", "{\"row\":1}\n");
  return dir;
}

TimelineOptions options_for(const std::string& dir) {
  TimelineOptions options;
  options.work_dir = dir;
  options.shards = 2;
  return options;
}

TEST(ExpTimeline, MergesSourcesInDeterministicOrderWithEpochAlignment) {
  const std::string dir = build_work_dir("merge");
  const TimelineSummary summary = merge_timeline(options_for(dir));
  ASSERT_TRUE(summary.ok()) << summary.error;
  EXPECT_EQ(summary.sources, 4u);
  EXPECT_EQ(summary.aligned_sources, 4u);
  EXPECT_EQ(summary.base_epoch_unix_us, 1000);
  EXPECT_EQ(summary.events, 5u);
  EXPECT_EQ(summary.stacks, 3u)
      << "one folded key per source prefix";

  std::ifstream in(summary.jsonl_path);
  std::string line;
  std::vector<json::Value> procs;
  std::vector<json::Value> events;
  while (std::getline(in, line)) {
    const json::Value v = json::parse(line);
    const std::string& t = v.at("t").as_string();
    if (t == "proc") procs.push_back(v);
    if (t == "ev") events.push_back(v);
  }
  // Dispatcher first, then shards in index order, attempts in order.
  ASSERT_EQ(procs.size(), 4u);
  EXPECT_EQ(procs[0].at("src").as_string(), "dispatcher");
  EXPECT_EQ(procs[0].at("offset_us").as_number(), 0.0);
  EXPECT_EQ(procs[1].at("src").as_string(), "shard0");
  EXPECT_EQ(procs[1].at("offset_us").as_number(), 1000.0);
  EXPECT_EQ(procs[2].at("src").as_string(), "shard1");
  EXPECT_EQ(procs[2].at("offset_us").as_number(), 3000.0);
  EXPECT_EQ(procs[3].at("src").as_string(), "shard1#2");
  EXPECT_EQ(procs[3].at("offset_us").as_number(), 3500.0);

  // Wall timestamps shift by the source's epoch offset; sim stay put.
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].at("src").as_string(), "dispatcher");
  EXPECT_EQ(events[0].at("ts").as_number(), 5.0);
  EXPECT_EQ(events[1].at("src").as_string(), "shard0");
  EXPECT_EQ(events[1].at("domain").as_string(), "sim");
  EXPECT_EQ(events[1].at("ts").as_number(), 10.0) << "sim is its own axis";
  EXPECT_EQ(events[1].at("dur").as_number(), 20.0);
  EXPECT_EQ(events[1].at("args").at("index").as_number(), 1.0);
  EXPECT_EQ(events[2].at("ts").as_number(), 1007.0);  // 7 + offset 1000
  EXPECT_EQ(events[3].at("src").as_string(), "shard1");
  EXPECT_EQ(events[3].at("ts").as_number(), 3002.0);  // 2 + offset 3000
  EXPECT_EQ(events[4].at("src").as_string(), "shard1#2");
  EXPECT_EQ(events[4].at("ts").as_number(), 3503.0);  // 3 + offset 3500

  // Stacks fold under their src prefix (map order: '#' sorts before ';').
  EXPECT_EQ(slurp(summary.stacks_path),
            "shard0;fake;task 3\nshard1#2;fake;task 2\n"
            "shard1;fake;task 1\n");
  fs::remove_all(dir);
}

TEST(ExpTimeline, ChromeOutputSeparatesSourcesByPid) {
  const std::string dir = build_work_dir("chrome");
  const TimelineSummary summary = merge_timeline(options_for(dir));
  ASSERT_TRUE(summary.ok()) << summary.error;
  const obs::query::TraceData trace =
      obs::query::load_trace(summary.chrome_path);
  ASSERT_EQ(trace.events.size(), 5u);
  // src/domain resolve from the per-source process names.
  EXPECT_EQ(trace.events[0].src, "dispatcher");
  EXPECT_EQ(trace.events[0].domain, "wall");
  EXPECT_EQ(trace.events[1].src, "shard0");
  EXPECT_EQ(trace.events[1].domain, "sim");
  EXPECT_EQ(trace.events[3].src, "shard1");
  EXPECT_EQ(trace.events[4].src, "shard1#2");
  // Aligned wall timestamps survive the Chrome path too.
  EXPECT_EQ(trace.events[3].ts_us, 3002.0);
  fs::remove_all(dir);
}

TEST(ExpTimeline, RemergeIsByteIdenticalAcrossAllOutputs) {
  const std::string dir = build_work_dir("stable");
  TimelineOptions first = options_for(dir);
  first.out_dir = dir + "/merged_a";
  TimelineOptions second = options_for(dir);
  second.out_dir = dir + "/merged_b";
  const TimelineSummary a = merge_timeline(first);
  const TimelineSummary b = merge_timeline(second);
  ASSERT_TRUE(a.ok()) << a.error;
  ASSERT_TRUE(b.ok()) << b.error;
  // A dispatcher that restarts re-merges the same telemetry streams; the
  // rebuilt timeline must be the same bytes, not just the same shape.
  EXPECT_EQ(slurp(a.jsonl_path), slurp(b.jsonl_path));
  EXPECT_EQ(slurp(a.chrome_path), slurp(b.chrome_path));
  EXPECT_EQ(slurp(a.perfetto_path), slurp(b.perfetto_path));
  EXPECT_EQ(slurp(a.stacks_path), slurp(b.stacks_path));
  fs::remove_all(dir);
}

TEST(ExpTimeline, HeaderlessStreamsMergeUnaligned) {
  const std::string dir = fresh_dir("headerless");
  // Killed before the first flush: no header line at all.
  write_file(dir + "/shard_0/telemetry_0001.jsonl", wall_instant(4.0, "tick"));
  write_file(dir + "/shard_1/telemetry_0001.jsonl",
             header("fake", 7, 9000) + wall_instant(1.0, "tick"));
  TimelineOptions options = options_for(dir);
  const TimelineSummary summary = merge_timeline(options);
  ASSERT_TRUE(summary.ok()) << summary.error;
  EXPECT_EQ(summary.sources, 2u);
  EXPECT_EQ(summary.aligned_sources, 1u);
  EXPECT_EQ(summary.base_epoch_unix_us, 9000);

  std::ifstream in(summary.jsonl_path);
  std::string line;
  std::vector<json::Value> events;
  bool unaligned_proc_seen = false;
  while (std::getline(in, line)) {
    const json::Value v = json::parse(line);
    if (v.at("t").as_string() == "proc" && !v.at("aligned").as_bool()) {
      unaligned_proc_seen = true;
    }
    if (v.at("t").as_string() == "ev") events.push_back(v);
  }
  EXPECT_TRUE(unaligned_proc_seen);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("ts").as_number(), 4.0)
      << "unalignable events keep their local timestamps";
  EXPECT_EQ(events[1].at("ts").as_number(), 1.0)
      << "the aligned source sits at the base epoch: offset 0";
  fs::remove_all(dir);
}

TEST(ExpTimeline, ReportsErrorsInsteadOfThrowing) {
  TimelineOptions options;
  EXPECT_FALSE(merge_timeline(options).ok());

  options.work_dir = fresh_dir("empty");
  options.shards = 2;
  const TimelineSummary summary = merge_timeline(options);
  EXPECT_FALSE(summary.ok());
  EXPECT_NE(summary.error.find("no telemetry streams"), std::string::npos);
  fs::remove_all(options.work_dir);
}

}  // namespace
}  // namespace dcs::exp
