#include "workload/online_predictor.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/ms_trace.h"

namespace dcs::workload {
namespace {

void feed_burst(OnlineBurstPredictor& p, double degree, int seconds) {
  for (int i = 0; i < seconds; ++i) p.observe(degree, Duration::seconds(1));
  p.observe(0.5, Duration::seconds(1));  // close the burst
}

TEST(OnlinePredictor, PriorsBeforeAnyBurst) {
  const OnlineBurstPredictor p;
  EXPECT_EQ(p.bursts_completed(), 0u);
  EXPECT_NEAR(p.predicted_duration().min(), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(p.predicted_mean_degree(), 2.0);
  EXPECT_DOUBLE_EQ(p.predicted_max_degree(), 3.0);
}

TEST(OnlinePredictor, LearnsFirstBurstExactly) {
  OnlineBurstPredictor p;
  feed_burst(p, 2.5, 300);
  EXPECT_EQ(p.bursts_completed(), 1u);
  EXPECT_NEAR(p.predicted_duration().sec(), 300.0, 1e-9);
  EXPECT_NEAR(p.predicted_mean_degree(), 2.5, 1e-9);
  EXPECT_NEAR(p.predicted_max_degree(), 2.5, 1e-9);
}

TEST(OnlinePredictor, ExponentiallyWeightsHistory) {
  OnlineBurstPredictor p(
      {.learning_rate = 0.5});
  feed_burst(p, 2.0, 100);
  feed_burst(p, 3.0, 300);
  EXPECT_EQ(p.bursts_completed(), 2u);
  EXPECT_NEAR(p.predicted_duration().sec(), 200.0, 1e-9);  // 0.5*100 + 0.5*300
  EXPECT_NEAR(p.predicted_mean_degree(), 2.5, 1e-9);
}

TEST(OnlinePredictor, CurrentBurstRaisesFloor) {
  OnlineBurstPredictor p;
  feed_burst(p, 2.0, 60);
  // A burst in progress longer than the estimate floors the forecast.
  for (int i = 0; i < 200; ++i) p.observe(3.5, Duration::seconds(1));
  EXPECT_TRUE(p.in_burst());
  EXPECT_NEAR(p.predicted_duration().sec(), 200.0, 1e-9);
  EXPECT_NEAR(p.predicted_max_degree(), 3.5, 1e-9);
}

TEST(OnlinePredictor, SubThresholdDemandIsNotABurst) {
  OnlineBurstPredictor p;
  for (int i = 0; i < 1000; ++i) p.observe(0.99, Duration::seconds(1));
  EXPECT_FALSE(p.in_burst());
  EXPECT_EQ(p.bursts_completed(), 0u);
}

TEST(OnlinePredictor, CountsMsTraceBursts) {
  OnlineBurstPredictor p;
  const TimeSeries trace = generate_ms_trace();
  for (const Sample& s : trace.samples()) {
    p.observe(s.value, Duration::seconds(1));
  }
  // The synthetic MS trace has 3-4 over-capacity episodes, with the trace
  // ending below capacity (so every burst completes).
  EXPECT_GE(p.bursts_completed(), 3u);
  EXPECT_LE(p.bursts_completed(), 6u);
  EXPECT_GT(p.predicted_mean_degree(), 1.5);
}

TEST(OnlinePredictor, Validation) {
  OnlineBurstPredictor::Params bad;
  bad.learning_rate = 0.0;
  EXPECT_THROW((void)OnlineBurstPredictor{bad}, std::invalid_argument);
  bad = {};
  bad.prior_max_degree = 1.0;  // below prior mean
  EXPECT_THROW((void)OnlineBurstPredictor{bad}, std::invalid_argument);
  OnlineBurstPredictor p;
  EXPECT_THROW((void)p.observe(-1.0, Duration::seconds(1)), std::invalid_argument);
  EXPECT_THROW((void)p.observe(1.0, Duration::zero()), std::invalid_argument);
}

}  // namespace
}  // namespace dcs::workload
