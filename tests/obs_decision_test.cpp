// Decision provenance (obs/decision.h) and SLO error-budget accounting
// (serving/error_budget.h): record layout, the trigger/consequence cause
// chain, budget math, and the offline explain/audit reconstruction in
// obs/query.h.
#include "obs/decision.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/query.h"
#include "obs/trace.h"
#include "serving/error_budget.h"
#include "util/units.h"

namespace dcs::obs {
namespace {

const TraceArg* find_arg(const TraceEvent& event, std::string_view key) {
  for (const TraceArg& a : event.args) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

TEST(Decision, RuleNamesAndTriggerSplit) {
  EXPECT_EQ(to_string(DecisionRule::kFaultInject), "fault-inject");
  EXPECT_EQ(to_string(DecisionRule::kSloLatchSet), "slo-latch-set");
  EXPECT_EQ(to_string(DecisionRule::kSprintOnset), "sprint-onset");
  EXPECT_EQ(to_string(DecisionRule::kLadderShed), "ladder-shed");
  EXPECT_EQ(to_string(DecisionRule::kSloBudgetExhausted),
            "slo-budget-exhausted");

  EXPECT_TRUE(is_trigger(DecisionRule::kFaultInject));
  EXPECT_TRUE(is_trigger(DecisionRule::kBurstStart));
  EXPECT_TRUE(is_trigger(DecisionRule::kSloLatchSet));
  EXPECT_FALSE(is_trigger(DecisionRule::kSprintOnset));
  EXPECT_FALSE(is_trigger(DecisionRule::kSloLatchRelease));
  EXPECT_FALSE(is_trigger(DecisionRule::kAdmissionClamp));
}

TEST(Decision, EmitLaysOutSchemaIdCauseInputsThresholdsExtras) {
  Tracer tracer;
  tracer.set_lane(3);
  DecisionLog log(&tracer);
  log.set_now(Duration::seconds(42));

  const std::string id =
      log.emit(DecisionRule::kBurstStart, {{"demand", 1.25}}, {{"demand", 1.0}},
               {arg("note", std::string_view("fixture"))});
  EXPECT_EQ(id, "d3-1");
  EXPECT_EQ(log.count(), 1u);

  ASSERT_EQ(tracer.events().size(), 1u);
  const TraceEvent& e = tracer.events().front();
  EXPECT_EQ(e.phase, 'i');
  EXPECT_EQ(e.cat, "decision");
  EXPECT_EQ(e.name, "burst-start");
  EXPECT_EQ(e.ts_us, 42e6);
  EXPECT_EQ(e.lane, 3u);
  ASSERT_NE(find_arg(e, "schema"), nullptr);
  ASSERT_NE(find_arg(e, "id"), nullptr);
  EXPECT_EQ(find_arg(e, "id")->value, "\"d3-1\"");
  // First record: no cause yet.
  EXPECT_EQ(find_arg(e, "cause"), nullptr);
  ASSERT_NE(find_arg(e, "in_demand"), nullptr);
  EXPECT_EQ(find_arg(e, "in_demand")->value, "1.25");
  ASSERT_NE(find_arg(e, "th_demand"), nullptr);
  EXPECT_EQ(find_arg(e, "th_demand")->value, "1");
  ASSERT_NE(find_arg(e, "note"), nullptr);
  EXPECT_EQ(find_arg(e, "note")->value, "\"fixture\"");
}

TEST(Decision, TriggersChainAndConsequencesCiteLatestTrigger) {
  Tracer tracer;
  DecisionLog log(&tracer);
  EXPECT_EQ(log.current_cause(), "");

  // Trigger 1 starts a chain; consequence cites it without replacing it.
  const std::string t1 = log.emit(DecisionRule::kFaultInject, {}, {});
  EXPECT_EQ(log.current_cause(), t1);
  const std::string c1 = log.emit(DecisionRule::kLadderShed, {}, {});
  EXPECT_EQ(log.current_cause(), t1);
  // Trigger 2 cites trigger 1 (emitted before the cause swap), then owns
  // the chain.
  const std::string t2 = log.emit(DecisionRule::kBurstEnd, {}, {});
  EXPECT_EQ(log.current_cause(), t2);
  const std::string c2 = log.emit(DecisionRule::kSprintEnd, {}, {});

  const std::vector<TraceEvent>& events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(find_arg(events[0], "cause"), nullptr);
  EXPECT_EQ(find_arg(events[1], "cause")->value, "\"" + t1 + "\"");
  EXPECT_EQ(find_arg(events[2], "cause")->value, "\"" + t1 + "\"");
  EXPECT_EQ(find_arg(events[3], "cause")->value, "\"" + t2 + "\"");
  EXPECT_EQ(c1, "d0-2");
  EXPECT_EQ(c2, "d0-4");
}

// ---------------------------------------------------------------------------
// Error budget

TEST(ErrorBudget, RemainingAndViolationCounting) {
  serving::ErrorBudget budget(
      {.target_p99_s = 0.1, .budget_fraction = 0.5, .fast_window = 4,
       .slow_window = 8});
  // Two good, two violating ticks: violations / (0.5 * 4 ticks) = 1 -> 0.
  budget.observe(0.05);
  budget.observe(0.05);
  EXPECT_EQ(budget.violations(), 0u);
  EXPECT_EQ(budget.remaining(), 1.0);
  budget.observe(0.2);
  budget.observe(0.2);
  EXPECT_EQ(budget.ticks(), 4u);
  EXPECT_EQ(budget.violations(), 2u);
  EXPECT_EQ(budget.remaining(), 0.0);
  EXPECT_TRUE(budget.exhausted());
}

TEST(ErrorBudget, BurnRatesUseTheirWindows) {
  serving::ErrorBudget budget(
      {.target_p99_s = 0.1, .budget_fraction = 0.25, .fast_window = 2,
       .slow_window = 4});
  budget.observe(0.2);   // violation
  budget.observe(0.05);
  budget.observe(0.05);
  // Fast window (last 2): 0 violations -> burn 0. Slow window (all 3):
  // 1/3 violating over budget 0.25 -> burn 4/3.
  EXPECT_EQ(budget.burn_fast(), 0.0);
  EXPECT_NEAR(budget.burn_slow(), (1.0 / 3.0) / 0.25, 1e-12);
  budget.observe(0.2);
  // Fast window now [good, violation] -> 0.5 / 0.25 = 2.
  EXPECT_NEAR(budget.burn_fast(), 2.0, 1e-12);
}

TEST(ErrorBudget, ExhaustionNeedsAFullFastWindow) {
  serving::ErrorBudget budget(
      {.target_p99_s = 0.1, .budget_fraction = 0.01, .fast_window = 8,
       .slow_window = 8});
  budget.observe(0.2);
  // remaining() is already 0, but one tick of history is no verdict.
  EXPECT_EQ(budget.remaining(), 0.0);
  EXPECT_FALSE(budget.exhausted());
  for (int i = 0; i < 7; ++i) budget.observe(0.2);
  EXPECT_TRUE(budget.exhausted());
}

TEST(ErrorBudget, RejectsInvalidParams) {
  EXPECT_THROW(serving::ErrorBudget({.target_p99_s = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(serving::ErrorBudget({.budget_fraction = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(serving::ErrorBudget({.budget_fraction = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(serving::ErrorBudget({.fast_window = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      serving::ErrorBudget({.fast_window = 10, .slow_window = 5}),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Offline reconstruction (obs/query.h) over a real emitted stream

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Emits a two-lane decision stream through real DecisionLogs, writes it
/// as trace JSONL and loads it back through the query layer.
query::TraceData emitted_fixture(const std::string& path) {
  Tracer tracer;
  {
    Tracer lane0;
    lane0.set_lane(0);
    DecisionLog log(&lane0);
    log.set_now(Duration::seconds(1));
    log.emit(DecisionRule::kFaultInject, {{"magnitude", 0.4}}, {});
    log.set_now(Duration::seconds(2));
    log.emit(DecisionRule::kLadderShed, {{"severity", 0.4}},
             {{"severe_severity", 0.5}});
    log.set_now(Duration::seconds(3));
    log.emit(DecisionRule::kBurstStart, {{"demand", 1.5}}, {{"demand", 1.0}});
    log.set_now(Duration::seconds(4));
    log.emit(DecisionRule::kSprintOnset, {{"degree", 2.0}}, {{"degree", 1.0}});
    tracer.merge_from(std::move(lane0));
  }
  {
    // A second lane with its own chain: ids stay unique per lane.
    Tracer lane1;
    lane1.set_lane(1);
    DecisionLog log(&lane1);
    log.set_now(Duration::seconds(1));
    log.emit(DecisionRule::kBurstStart, {{"demand", 1.2}}, {{"demand", 1.0}});
    log.set_now(Duration::seconds(2));
    log.emit(DecisionRule::kSprintOnset, {{"degree", 1.5}}, {{"degree", 1.0}});
    tracer.merge_from(std::move(lane1));
  }
  std::ofstream out(path, std::ios::binary);
  tracer.write_jsonl(out);
  out.close();
  return query::load_trace(path);
}

TEST(DecisionQuery, RecordsRoundTripThroughTraceJsonl) {
  const std::string path = temp_path("decision_roundtrip.jsonl");
  const query::TraceData trace = emitted_fixture(path);
  const std::vector<query::DecisionRecord> records =
      query::decision_records(trace);
  ASSERT_EQ(records.size(), 6u);
  EXPECT_EQ(records[0].rule, "fault-inject");
  EXPECT_EQ(records[0].id, "d0-1");
  EXPECT_EQ(records[0].cause, "");
  EXPECT_EQ(records[0].ts_us, 1e6);
  EXPECT_EQ(records[1].rule, "ladder-shed");
  EXPECT_EQ(records[1].cause, "d0-1");
  EXPECT_EQ(records[3].rule, "sprint-onset");
  EXPECT_EQ(records[3].cause, "d0-3");
  EXPECT_EQ(records[4].lane, 1u);
  EXPECT_EQ(records[4].id, "d1-1");
  std::remove(path.c_str());
}

TEST(DecisionQuery, ExplainWalksBackToTheRoot) {
  const std::string path = temp_path("decision_explain.jsonl");
  const query::TraceData trace = emitted_fixture(path);
  const std::vector<query::DecisionRecord> records =
      query::decision_records(trace);

  // Lane 0 sprint-onset -> burst-start -> fault-inject (the burst trigger
  // cites the fault chain that preceded it).
  const query::ExplainChain chain = query::explain_record(records, 3);
  EXPECT_TRUE(chain.complete());
  ASSERT_EQ(chain.chain.size(), 3u);
  EXPECT_EQ(records[chain.chain[0]].rule, "sprint-onset");
  EXPECT_EQ(records[chain.chain[1]].rule, "burst-start");
  EXPECT_EQ(records[chain.chain[2]].rule, "fault-inject");

  // Lane 1's chain is independent of lane 0's.
  const query::ExplainChain lane1 = query::explain_record(records, 5);
  EXPECT_TRUE(lane1.complete());
  ASSERT_EQ(lane1.chain.size(), 2u);
  EXPECT_EQ(records[lane1.chain[1]].id, "d1-1");
  std::remove(path.c_str());
}

TEST(DecisionQuery, ExplainReportsDanglingCauses) {
  std::vector<query::DecisionRecord> records(1);
  records[0].rule = "sprint-onset";
  records[0].id = "d0-9";
  records[0].cause = "d0-8";  // never emitted
  const query::ExplainChain chain = query::explain_record(records, 0);
  EXPECT_FALSE(chain.complete());
  EXPECT_EQ(chain.dangling, "d0-8");
  ASSERT_EQ(chain.chain.size(), 1u);
}

TEST(DecisionQuery, ExplainResolvesDuplicateIdsToTheLatestEarlier) {
  // Lane reuse across two sweeps in one file: the same id appears twice;
  // a later consequence must bind to the nearest earlier instance.
  std::vector<query::DecisionRecord> records(3);
  records[0].rule = "burst-start";
  records[0].id = "d0-1";
  records[0].ts_us = 1.0;
  records[1].rule = "burst-start";
  records[1].id = "d0-1";
  records[1].ts_us = 2.0;
  records[2].rule = "sprint-onset";
  records[2].id = "d0-2";
  records[2].cause = "d0-1";
  records[2].ts_us = 3.0;
  const query::ExplainChain chain = query::explain_record(records, 2);
  EXPECT_TRUE(chain.complete());
  ASSERT_EQ(chain.chain.size(), 2u);
  EXPECT_EQ(chain.chain[1], 1u);
}

TEST(DecisionQuery, AuditCountsRulesAndResolution) {
  const std::string path = temp_path("decision_audit.jsonl");
  const query::TraceData trace = emitted_fixture(path);
  const std::vector<query::AuditRow> rows =
      query::audit(query::decision_records(trace));
  ASSERT_EQ(rows.size(), 4u);  // sorted by (src, rule)
  EXPECT_EQ(rows[0].rule, "burst-start");
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_EQ(rows[0].roots, 1u);  // lane 1's burst-start has no cause
  EXPECT_EQ(rows[0].resolved, 2u);
  EXPECT_EQ(rows[0].dangling, 0u);
  EXPECT_EQ(rows[3].rule, "sprint-onset");
  EXPECT_EQ(rows[3].count, 2u);
  EXPECT_EQ(rows[3].resolved, 2u);
  std::remove(path.c_str());
}

TEST(DecisionQuery, CounterMonotoneFlagsDecreasesPerLane) {
  const std::string path = temp_path("decision_monotone.jsonl");
  std::ofstream out(path, std::ios::binary);
  const auto sample = [&](int lane, double ts, double value) {
    out << "{\"t\":\"ev\",\"domain\":\"sim\",\"ph\":\"C\",\"ts\":" << ts
        << ",\"lane\":" << lane
        << ",\"name\":\"slo_budget_violations\",\"args\":{\"value\":" << value
        << "}}\n";
  };
  sample(0, 0, 0);
  sample(0, 10, 2);
  sample(1, 5, 5);  // other lane's lower value must not trip lane 0
  sample(0, 20, 1);  // the actual decrease
  out.close();

  const std::vector<query::MonotoneViolation> violations =
      query::counter_monotone(query::load_trace(path), "slo_budget_violations");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].lane, 0u);
  EXPECT_EQ(violations[0].ts_us, 20.0);
  EXPECT_EQ(violations[0].prev, 2.0);
  EXPECT_EQ(violations[0].value, 1.0);
  std::remove(path.c_str());
}

TEST(DecisionQuery, WritersAreByteStable) {
  const std::string path = temp_path("decision_writers.jsonl");
  const query::TraceData trace = emitted_fixture(path);
  const std::vector<query::DecisionRecord> records =
      query::decision_records(trace);
  std::vector<query::ExplainChain> chains;
  chains.push_back(query::explain_record(records, 3));

  std::ostringstream csv_a;
  std::ostringstream csv_b;
  query::write_decision_csv(csv_a, records);
  query::write_decision_csv(csv_b, records);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_EQ(csv_a.str().substr(0, csv_a.str().find('\n')),
            "src,lane,ts_us,rule,id,cause");

  std::ostringstream jsonl_a;
  std::ostringstream jsonl_b;
  query::write_decision_jsonl(jsonl_a, trace, records);
  query::write_decision_jsonl(jsonl_b, trace, records);
  EXPECT_EQ(jsonl_a.str(), jsonl_b.str());
  // Rows carry the full args payload.
  EXPECT_NE(jsonl_a.str().find("\"in_demand\":1.5"), std::string::npos);

  std::ostringstream explain_csv;
  query::write_explain_csv(explain_csv, records, chains);
  // Three links of the lane-0 sprint chain under one target id.
  EXPECT_NE(explain_csv.str().find("d0-4,0,sprint-onset"), std::string::npos);
  EXPECT_NE(explain_csv.str().find("d0-4,2,fault-inject"), std::string::npos);

  std::ostringstream audit_jsonl;
  query::write_audit_jsonl(audit_jsonl, query::audit(records));
  EXPECT_NE(audit_jsonl.str().find("\"rule\":\"sprint-onset\",\"count\":2"),
            std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcs::obs
